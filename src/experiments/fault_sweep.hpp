#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "experiments/tables23.hpp"
#include "fpga/faults.hpp"
#include "netlist/profiles.hpp"
#include "router/width_search.hpp"

namespace fpr {

/// Configuration of the fault-injection yield sweep: for each circuit and
/// each defect rate, (a) the minimum channel width the DEFECTIVE device
/// needs, and (b) how gracefully routing degrades at the fault-free minimum
/// width — the two curves a yield analysis wants (cf. the defect-tolerant
/// FPGA literature in PAPERS.md).
struct FaultSweepOptions {
  unsigned synth_seed = 1995;     // circuit synthesis (same as Tables 2/3)
  std::uint64_t fault_seed = 7;   // base of every per-cell FaultSpec seed

  /// Defect rates swept, in per-mille of wire segments (switch connections
  /// get the same rate, connection-block pins half of it — defects hit the
  /// big switchboxes harder than the short block pigtails). 0 = pristine.
  std::vector<int> fault_permilles{0, 10, 25, 50, 100};

  int max_passes = 12;
  int max_width = 24;

  /// Deterministic per-probe node-expansion budget (0 = unlimited); keeps
  /// the sweep's wall-clock bounded on pathological defect draws without
  /// introducing wall-clock nondeterminism.
  long long node_budget_per_probe = 0;

  /// Worker threads for the circuit sweep (0 = shared pool, 1 = serial);
  /// results are identical for every value.
  int threads = 0;
};

/// One (circuit, fault rate) cell of the sweep.
struct FaultSweepCell {
  int permille = 0;
  FaultSpec faults;  // exact injected spec (replayable via describe())

  // Minimum-width search on the defective device.
  WidthSearchStatus status = WidthSearchStatus::kEmptyRange;
  int min_width = -1;
  int probes = 0;           // serial-trace probe count
  int probes_aborted = 0;   // of which budget-aborted

  // Degraded routing at the FAULT-FREE minimum width (how much yield the
  // defects cost if the part had been built for a pristine die).
  double routed_fraction = 1.0;
  int nets_blocked_by_fault = 0;
  int nets_rerouted_around_faults = 0;
  long detour_wirelength_overhead = 0;
  RoutingResult degraded;  // full result, for oracle replay by callers
};

struct FaultSweepRow {
  CircuitProfile profile;
  ArchFamily family = ArchFamily::kXc3000;
  int fault_free_width = -1;  // the rate-0 minimum width (yield baseline)
  std::vector<FaultSweepCell> cells;  // one per options.fault_permilles
};

struct FaultSweepResult {
  std::vector<FaultSweepRow> rows;
};

/// Runs the sweep over `profiles`. Fully deterministic: every fault set is
/// drawn from (fault_seed, circuit name, rate) and every probe is a pure
/// function of its width, so a fixed option set yields a byte-identical
/// result on every platform and thread count.
FaultSweepResult run_fault_sweep(std::span<const CircuitProfile> profiles, ArchFamily family,
                                 const FaultSweepOptions& options = {});

/// The `count` smallest profiles (by array area) — the bounded default
/// subset the bench sweeps without FPR_FULL.
std::vector<CircuitProfile> smallest_profiles(std::span<const CircuitProfile> profiles,
                                              int count);

/// Renders the yield curve as a text table (one row per circuit x rate).
std::string render_fault_sweep(const FaultSweepResult& result);

}  // namespace fpr
