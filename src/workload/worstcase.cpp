#include "workload/worstcase.hpp"

#include "core/contract.hpp"

namespace fpr {

WorstCaseInstance pfa_weighted_worst_case(int sink_pairs, Weight epsilon) {
  FPR_CHECK(sink_pairs >= 1, "pfa_weighted_worst_case sink_pairs=" << sink_pairs << " must be >= 1");
  const int sinks = 2 * sink_pairs;
  // Node layout (ids chosen so decoys win MaxDom ties against the hub):
  //   0                         source
  //   1 .. pairs                decoys
  //   pairs+1 .. pairs+sinks    sinks
  //   pairs+sinks+1             hub
  WorstCaseInstance inst;
  inst.graph = Graph(1 + sink_pairs + sinks + 1);
  const NodeId source = 0;
  const auto decoy = [&](int i) { return static_cast<NodeId>(1 + i); };
  const auto sink = [&](int j) { return static_cast<NodeId>(1 + sink_pairs + j); };
  const NodeId hub = static_cast<NodeId>(1 + sink_pairs + sinks);

  inst.graph.add_edge(source, hub, 1.0);
  for (int j = 0; j < sinks; ++j) inst.graph.add_edge(hub, sink(j), epsilon);
  for (int i = 0; i < sink_pairs; ++i) {
    inst.graph.add_edge(source, decoy(i), 1.0);
    inst.graph.add_edge(decoy(i), sink(2 * i), epsilon);
    inst.graph.add_edge(decoy(i), sink(2 * i + 1), epsilon);
  }

  inst.net.source = source;
  for (int j = 0; j < sinks; ++j) inst.net.sinks.push_back(sink(j));
  inst.optimal_cost = 1.0 + sinks * epsilon;  // the hub star
  return inst;
}

StaircaseInstance pfa_staircase(int steps) {
  FPR_CHECK(steps >= 1, "pfa_staircase steps=" << steps << " must be >= 1");
  StaircaseInstance inst{GridGraph(steps + 1, 2 * steps + 1), Net{}};
  inst.net.source = inst.grid.node_at(0, 0);
  // Sinks p_i = (i, 2*(steps - i)): unit horizontal, two-unit vertical
  // interpoint spacing (Figure 11(a)); pairwise incomparable under
  // dominance, so every sink needs its own branch.
  for (int i = 0; i <= steps; ++i) {
    const NodeId v = inst.grid.node_at(i, 2 * (steps - i));
    if (v != inst.net.source) inst.net.sinks.push_back(v);
  }
  return inst;
}

WorstCaseInstance idom_set_cover_worst_case(int levels, Weight epsilon) {
  FPR_CHECK(levels >= 1 && levels <= 20,
            "idom_set_cover_worst_case levels=" << levels << " outside the supported [1, 20]");
  const int columns = 1 << levels;
  const int sinks = 2 * columns;

  // Trap boxes cover column ranges of exponentially decreasing size
  // (C/2, C/4, ..., 1, plus the final leftover column); the two row boxes
  // are the optimal cover. Trap ids precede row ids so greedy savings ties
  // break toward the traps, as in Figure 14(d).
  std::vector<std::pair<int, int>> trap_ranges;  // [begin, end) columns
  int begin = 0;
  for (int size = columns / 2; size >= 1; size /= 2) {
    trap_ranges.emplace_back(begin, begin + size);
    begin += size;
  }
  if (begin < columns) trap_ranges.emplace_back(begin, columns);

  const int traps = static_cast<int>(trap_ranges.size());
  // Layout: 0 = source; 1..traps = trap boxes; traps+1, traps+2 = row
  // boxes; then the sinks (row-major: sink(row, col)).
  WorstCaseInstance inst;
  inst.graph = Graph(1 + traps + 2 + sinks);
  const NodeId source = 0;
  const auto trap_node = [&](int i) { return static_cast<NodeId>(1 + i); };
  const auto row_node = [&](int r) { return static_cast<NodeId>(1 + traps + r); };
  const auto sink_node = [&](int r, int c) {
    return static_cast<NodeId>(1 + traps + 2 + r * columns + c);
  };

  for (int i = 0; i < traps; ++i) {
    inst.graph.add_edge(source, trap_node(i), 1.0);
    for (int c = trap_ranges[static_cast<std::size_t>(i)].first;
         c < trap_ranges[static_cast<std::size_t>(i)].second; ++c) {
      inst.graph.add_edge(trap_node(i), sink_node(0, c), epsilon);
      inst.graph.add_edge(trap_node(i), sink_node(1, c), epsilon);
    }
  }
  for (int r = 0; r < 2; ++r) {
    inst.graph.add_edge(source, row_node(r), 1.0);
    for (int c = 0; c < columns; ++c) {
      inst.graph.add_edge(row_node(r), sink_node(r, c), epsilon);
    }
  }

  inst.net.source = source;
  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < columns; ++c) inst.net.sinks.push_back(sink_node(r, c));
  }
  // Two row boxes plus one epsilon hop per sink; no cover with fewer than
  // two unit edges exists, so this is the GSA optimum.
  inst.optimal_cost = 2.0 + sinks * epsilon;
  return inst;
}

}  // namespace fpr
