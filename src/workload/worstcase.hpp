#pragma once

#include "core/net.hpp"
#include "graph/graph.hpp"
#include "graph/grid.hpp"

namespace fpr {

/// A worst-case GSA instance with its analytically-known optimal cost.
struct WorstCaseInstance {
  Graph graph;
  Net net;
  Weight optimal_cost = 0;
};

/// Figure 10: the weighted-graph family on which PFA is Theta(|N|) times
/// optimal.
///
/// Construction (epsilon replaces the figure's zero-weight edges so that
/// distances stay non-degenerate): a hub at unit distance from the source
/// fans out to all 2*sink_pairs sinks at epsilon each — the optimal
/// solution, cost 1 + 2*pairs*epsilon. A private decoy per sink pair sits
/// at the same unit distance and is the farthest common MaxDom of its pair
/// (ids make it win ties against the hub), so PFA folds every pair through
/// its own decoy and then pays a fresh unit path per decoy: cost ~ pairs.
WorstCaseInstance pfa_weighted_worst_case(int sink_pairs, Weight epsilon = 1e-3);

/// Figure 11: the planar pointset on which PFA's ratio approaches 2 —
/// a staircase with unit horizontal and two-unit vertical interpoint
/// spacing, source at the origin, realized on a unit grid graph.
struct StaircaseInstance {
  GridGraph grid;
  Net net;
};
StaircaseInstance pfa_staircase(int steps);

/// Figure 14: the Set-Cover gadget forcing IDOM to Omega(log |N|) times
/// optimal. Sinks form a 2 x (2^levels) matrix. "Row" boxes (the optimal
/// cover, 2 of them) and "greedy trap" boxes of exponentially decreasing
/// size (each covering exactly half of the sinks the previous traps left)
/// are macro gadgets: a box node at unit distance from the source with
/// epsilon edges to its covered sinks. Greedy savings ties are broken
/// toward the traps by node id, so IDOM adopts ~`levels` boxes while the
/// optimum uses the 2 rows.
WorstCaseInstance idom_set_cover_worst_case(int levels, Weight epsilon = 1e-3);

}  // namespace fpr
