#include "workload/random_nets.hpp"

#include <algorithm>

namespace fpr {

Net random_grid_net(const GridGraph& grid, int pins, std::mt19937_64& rng) {
  std::uniform_int_distribution<NodeId> any(0, grid.graph().node_count() - 1);
  std::vector<NodeId> picked;
  picked.reserve(static_cast<std::size_t>(pins));
  while (static_cast<int>(picked.size()) < pins) {
    const NodeId v = any(rng);
    if (std::find(picked.begin(), picked.end(), v) == picked.end()) picked.push_back(v);
  }
  Net net;
  net.source = picked.front();
  net.sinks.assign(picked.begin() + 1, picked.end());
  return net;
}

Net random_grid_net(const GridGraph& grid, int min_pins, int max_pins, std::mt19937_64& rng) {
  std::uniform_int_distribution<int> pin_count(min_pins, max_pins);
  return random_grid_net(grid, pin_count(rng), rng);
}

}  // namespace fpr
