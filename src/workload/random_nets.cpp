#include "workload/random_nets.hpp"

#include <algorithm>

#include "core/rng.hpp"

namespace fpr {

Net random_grid_net(const GridGraph& grid, int pins, std::mt19937_64& rng) {
  const NodeId nodes = grid.graph().node_count();
  std::vector<NodeId> picked;
  picked.reserve(static_cast<std::size_t>(pins));
  while (static_cast<int>(picked.size()) < pins) {
    const NodeId v = static_cast<NodeId>(draw_below(rng, static_cast<std::uint64_t>(nodes)));
    if (std::find(picked.begin(), picked.end(), v) == picked.end()) picked.push_back(v);
  }
  Net net;
  net.source = picked.front();
  net.sinks.assign(picked.begin() + 1, picked.end());
  return net;
}

Net random_grid_net(const GridGraph& grid, int min_pins, int max_pins, std::mt19937_64& rng) {
  return random_grid_net(grid, draw_range(rng, min_pins, max_pins), rng);
}

}  // namespace fpr
