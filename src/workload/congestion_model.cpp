#include "workload/congestion_model.hpp"

#include "steiner/kmb.hpp"
#include "workload/random_nets.hpp"

namespace fpr {

const CongestionLevel& congestion_none() {
  static const CongestionLevel kLevel{"none", 0, 1.00};
  return kLevel;
}

const CongestionLevel& congestion_low() {
  static const CongestionLevel kLevel{"low", 10, 1.28};
  return kLevel;
}

const CongestionLevel& congestion_medium() {
  static const CongestionLevel kLevel{"medium", 20, 1.55};
  return kLevel;
}

GridGraph make_congested_grid(int width, int height, int pre_routed_nets, std::mt19937_64& rng) {
  GridGraph grid(width, height, 1.0);
  for (int i = 0; i < pre_routed_nets; ++i) {
    const Net net = random_grid_net(grid, 2, 5, rng);
    const RoutingTree tree = kmb(grid.graph(), net.terminals());
    for (const EdgeId e : tree.edges()) {
      grid.graph().add_edge_weight(e, 1.0);
    }
  }
  return grid;
}

}  // namespace fpr
