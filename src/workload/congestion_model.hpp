#pragma once

#include <random>

#include "graph/grid.hpp"

namespace fpr {

/// Table 1's congestion model: "starting with a grid graph having unit
/// weights on all edges, k uniformly-distributed nets (2-5 pins each) were
/// routed using KMB. As each net was routed, the weights of the
/// corresponding graph edges were incremented."
///
/// The paper's three levels: k = 0 (none, mean weight 1.00), k = 10 (low,
/// ~1.28), k = 20 (medium, ~1.55).
struct CongestionLevel {
  const char* label;
  int pre_routed_nets;       // k
  double paper_mean_weight;  // the w-bar the paper reports for this level
};

/// The three levels in Table 1's order.
const CongestionLevel& congestion_none();
const CongestionLevel& congestion_low();
const CongestionLevel& congestion_medium();

/// Builds a fresh congested grid: unit weights, then k random 2-5-pin nets
/// routed with KMB, each routed net's tree edges incremented by 1.
/// Deterministic per rng state.
GridGraph make_congested_grid(int width, int height, int pre_routed_nets, std::mt19937_64& rng);

}  // namespace fpr
