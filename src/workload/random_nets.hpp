#pragma once

#include <random>
#include <vector>

#include "core/net.hpp"
#include "graph/grid.hpp"

namespace fpr {

/// Uniformly-distributed random nets on a grid graph — Table 1's test nets
/// ("random nets, uniformly distributed in 20x20 weighted grid graphs").
/// Pins land on distinct nodes; the first drawn pin is the source.
Net random_grid_net(const GridGraph& grid, int pins, std::mt19937_64& rng);

/// Net with a uniformly random pin count in [min_pins, max_pins] — the
/// congestion model's pre-routed nets use 2-5 pins.
Net random_grid_net(const GridGraph& grid, int min_pins, int max_pins, std::mt19937_64& rng);

}  // namespace fpr
