#include "io/text_io.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

namespace fpr {

namespace {

/// Circuit/graph names are written as single tokens; spaces are escaped so
/// round-trips are exact.
std::string escape(const std::string& s) {
  std::string out;
  for (const char c : s) out += (c == ' ' ? '_' : c);
  return out.empty() ? "unnamed" : out;
}

}  // namespace

void write_graph(std::ostream& out, const Graph& g) {
  out << "graph " << g.node_count() << " " << g.edge_count() << "\n";
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const auto& ed = g.edge(e);
    out << "e " << ed.u << " " << ed.v << " " << ed.weight << "\n";
  }
}

std::optional<Graph> read_graph(std::istream& in) {
  std::string tag;
  NodeId nodes = 0;
  EdgeId edges = 0;
  if (!(in >> tag >> nodes >> edges) || tag != "graph" || nodes < 0 || edges < 0) {
    return std::nullopt;
  }
  Graph g(nodes);
  for (EdgeId i = 0; i < edges; ++i) {
    NodeId u = 0, v = 0;
    Weight w = 0;
    if (!(in >> tag >> u >> v >> w) || tag != "e") return std::nullopt;
    if (u < 0 || u >= nodes || v < 0 || v >= nodes || u == v || w < 0) return std::nullopt;
    g.add_edge(u, v, w);
  }
  return g;
}

void write_circuit(std::ostream& out, const Circuit& circuit) {
  out << "circuit " << escape(circuit.name) << " " << circuit.rows << " " << circuit.cols
      << " " << circuit.nets.size() << "\n";
  for (const auto& net : circuit.nets) {
    // "cnet" marks timing-critical nets; "net" the rest.
    out << (net.critical ? "cnet " : "net ") << net.pin_count() << " " << net.source.x << " "
        << net.source.y;
    for (const auto& sink : net.sinks) out << " " << sink.x << " " << sink.y;
    out << "\n";
  }
}

std::optional<Circuit> read_circuit(std::istream& in) {
  std::string tag;
  Circuit circuit;
  std::size_t net_count = 0;
  if (!(in >> tag >> circuit.name >> circuit.rows >> circuit.cols >> net_count) ||
      tag != "circuit" || circuit.rows < 1 || circuit.cols < 1) {
    return std::nullopt;
  }
  const auto on_array = [&](const PinRef& p) {
    return p.x >= 0 && p.x < circuit.cols && p.y >= 0 && p.y < circuit.rows;
  };
  circuit.nets.reserve(net_count);
  for (std::size_t i = 0; i < net_count; ++i) {
    int pins = 0;
    if (!(in >> tag >> pins) || (tag != "net" && tag != "cnet") || pins < 2) {
      return std::nullopt;
    }
    CircuitNet net;
    net.critical = (tag == "cnet");
    if (!(in >> net.source.x >> net.source.y) || !on_array(net.source)) return std::nullopt;
    for (int p = 1; p < pins; ++p) {
      PinRef sink;
      if (!(in >> sink.x >> sink.y) || !on_array(sink)) return std::nullopt;
      net.sinks.push_back(sink);
    }
    circuit.nets.push_back(std::move(net));
  }
  return circuit;
}

void write_routing_tree(std::ostream& out, const RoutingTree& tree) {
  out << "tree " << tree.edges().size() << "\n";
  for (const EdgeId e : tree.edges()) out << e << "\n";
}

std::optional<RoutingTree> read_routing_tree(std::istream& in, const Graph& g) {
  std::string tag;
  std::size_t count = 0;
  if (!(in >> tag >> count) || tag != "tree") return std::nullopt;
  std::vector<EdgeId> edges;
  edges.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    EdgeId e = kInvalidEdge;
    if (!(in >> e) || e < 0 || e >= g.edge_count()) return std::nullopt;
    edges.push_back(e);
  }
  return RoutingTree(g, std::move(edges));
}

bool save_circuit(const std::string& path, const Circuit& circuit) {
  std::ofstream out(path);
  if (!out) return false;
  write_circuit(out, circuit);
  return static_cast<bool>(out);
}

std::optional<Circuit> load_circuit(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  return read_circuit(in);
}

}  // namespace fpr
