#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "graph/graph.hpp"
#include "graph/routing_tree.hpp"
#include "netlist/netlist.hpp"

namespace fpr {

/// Plain-text serialization for the library's data (the paper notes "our
/// code and benchmarks are available upon request" — these formats are how
/// this repo publishes its synthetic benchmark suites and routing results).
///
/// Graph format:
///   graph <nodes> <edges>
///   e <u> <v> <weight>        (one line per edge, ids in [0, nodes))
///
/// Circuit format:
///   circuit <name> <rows> <cols> <nets>
///   net <pins> <x0> <y0> <x1> <y1> ...   (pin 0 is the source block)
///
/// Routing-tree format (relative to a known graph):
///   tree <edges>
///   <edge-id> ...
///
/// Readers validate structure and ranges and return nullopt on malformed
/// input (never crash on untrusted files).

void write_graph(std::ostream& out, const Graph& g);
std::optional<Graph> read_graph(std::istream& in);

void write_circuit(std::ostream& out, const Circuit& circuit);
std::optional<Circuit> read_circuit(std::istream& in);

void write_routing_tree(std::ostream& out, const RoutingTree& tree);
std::optional<RoutingTree> read_routing_tree(std::istream& in, const Graph& g);

/// Convenience file wrappers; false/nullopt on I/O failure.
bool save_circuit(const std::string& path, const Circuit& circuit);
std::optional<Circuit> load_circuit(const std::string& path);

}  // namespace fpr
