#include "core/parallel.hpp"

#include <chrono>
#include <cstdlib>
#include <memory>

namespace fpr {

int default_thread_count() {
  if (const char* env = std::getenv("FPR_THREADS")) {
    const int n = std::atoi(env);
    if (n >= 1) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int threads) : size_(threads < 1 ? 1 : threads) {
  if (size_ <= 1) return;
  workers_.reserve(static_cast<std::size_t>(size_));
  for (int i = 0; i < size_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      cv_.wait(mu_, [this]() FPR_REQUIRES(mu_) { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop requested and nothing left
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

bool ThreadPool::try_run_one() {
  std::function<void()> task;
  {
    MutexLock lock(mu_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
  }
  task();
  return true;
}

std::future<void> ThreadPool::submit(std::function<void()> fn) {
  auto task = std::make_shared<std::packaged_task<void()>>(std::move(fn));
  std::future<void> fut = task->get_future();
  if (size_ <= 1) {
    (*task)();
    return fut;
  }
  {
    MutexLock lock(mu_);
    queue_.emplace_back([task] { (*task)(); });
  }
  cv_.notify_one();
  return fut;
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  if (size_ <= 1 || count == 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }

  struct Batch {
    Mutex mu;
    CondVar cv;
    std::size_t remaining FPR_GUARDED_BY(mu) = 0;
    std::exception_ptr error FPR_GUARDED_BY(mu);
  };
  auto batch = std::make_shared<Batch>();
  {
    // No other thread can see `batch` yet; the lock exists to satisfy the
    // guarded_by contract (uncontended, once per batch — free).
    MutexLock lock(batch->mu);
    batch->remaining = count;
  }

  {
    MutexLock lock(mu_);
    for (std::size_t i = 0; i < count; ++i) {
      // `body` outlives the batch: this call only returns once
      // batch->remaining hits zero, so capturing it by reference is safe.
      queue_.emplace_back([batch, &body, i] {
        try {
          body(i);
        } catch (...) {
          MutexLock block(batch->mu);
          if (!batch->error) batch->error = std::current_exception();
        }
        {
          MutexLock block(batch->mu);
          --batch->remaining;
        }
        batch->cv.notify_all();
      });
    }
  }
  cv_.notify_all();

  // Caller-helps wait: keep draining the queue so that nested
  // parallel_for calls issued from worker threads always make progress.
  bool done = false;
  while (!done) {
    if (try_run_one()) continue;
    MutexLock lock(batch->mu);
    if (batch->remaining == 0) {
      done = true;
    } else {
      batch->cv.wait_for(batch->mu, std::chrono::milliseconds(2));
    }
  }
  std::exception_ptr error;
  {
    MutexLock lock(batch->mu);
    error = batch->error;
  }
  if (error) std::rethrow_exception(error);
}

ThreadPool& ThreadPool::shared() {
  // fpr-lint: allow(global-state) process-wide pool by design; holds no routing state, sized once from FPR_THREADS
  static ThreadPool pool(default_thread_count());
  return pool;
}

void run_parallel(int threads, std::size_t count,
                  const std::function<void(std::size_t)>& body) {
  const int n = threads > 0 ? threads : ThreadPool::shared().size();
  if (n <= 1 || count <= 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  if (threads <= 0 || n == ThreadPool::shared().size()) {
    ThreadPool::shared().parallel_for(count, body);
    return;
  }
  ThreadPool dedicated(n);
  dedicated.parallel_for(count, body);
}

PoolLease::PoolLease(int threads) {
  ThreadPool& shared = ThreadPool::shared();
  if (threads <= 0 || threads == shared.size()) {
    pool_ = &shared;
    return;
  }
  owned_ = std::make_unique<ThreadPool>(threads);
  pool_ = owned_.get();
}

}  // namespace fpr
