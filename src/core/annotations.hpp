#pragma once

#include <condition_variable>
#include <mutex>

/// Clang thread-safety annotations (-Wthread-safety) plus the annotated
/// locking primitives the repo's concurrent substrate is built on.
///
/// The lock discipline that keeps the parallel width search and circuit
/// sweeps correct — "queue_ and stop_ only under mu_", "the CSR snapshot is
/// rebuilt only under csr_mu_" — used to live in comments. These macros turn
/// it into compiler-checked contracts: a member declared
/// FPR_GUARDED_BY(mu_) cannot be read or written without holding mu_, and a
/// function declared FPR_REQUIRES(mu_) cannot be called without it, or the
/// clang CI job (-Wthread-safety -Werror, see .github/workflows/ci.yml)
/// fails the build. Off clang every macro expands to nothing, so gcc builds
/// are unaffected.
///
/// std::mutex itself carries no capability attributes under libstdc++, so
/// the analysis cannot see through it; fpr::Mutex / fpr::MutexLock /
/// fpr::CondVar are the thin annotated equivalents. Use them for any new
/// shared state. The wrappers add no overhead beyond
/// std::condition_variable_any's generic-lock support, which is off the
/// routing hot path (locks guard pool scheduling and one-time CSR builds,
/// never the Dijkstra inner loop).
///
/// Header-only and layer-free like core/contract.hpp: fpr_graph uses it
/// without linking fpr_core.

#if defined(__clang__) && (!defined(SWIG))
#define FPR_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define FPR_THREAD_ANNOTATION(x)  // no-op off clang
#endif

/// Declares a type to be a lockable capability ("mutex").
#define FPR_CAPABILITY(x) FPR_THREAD_ANNOTATION(capability(x))

/// Declares an RAII type that acquires in its constructor, releases in its
/// destructor.
#define FPR_SCOPED_CAPABILITY FPR_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while holding the given mutex.
#define FPR_GUARDED_BY(x) FPR_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is protected by the given mutex.
#define FPR_PT_GUARDED_BY(x) FPR_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function callable only while holding the given mutex(es).
#define FPR_REQUIRES(...) FPR_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function that acquires the mutex(es) and returns holding them.
#define FPR_ACQUIRE(...) FPR_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function that releases the held mutex(es).
#define FPR_RELEASE(...) FPR_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function that acquires the mutex iff it returns `ret`.
#define FPR_TRY_ACQUIRE(ret, ...) FPR_THREAD_ANNOTATION(try_acquire_capability(ret, __VA_ARGS__))

/// Function that must NOT be called while holding the mutex(es) (deadlock
/// guard for non-reentrant locks).
#define FPR_EXCLUDES(...) FPR_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Escape hatch for protocols the static analysis cannot express (e.g. the
/// release/acquire publication of Graph's CSR snapshot). Every use carries a
/// comment justifying why the access is safe.
#define FPR_NO_THREAD_SAFETY_ANALYSIS FPR_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace fpr {

/// std::mutex with capability annotations.
class FPR_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() FPR_ACQUIRE() { mu_.lock(); }
  void unlock() FPR_RELEASE() { mu_.unlock(); }
  bool try_lock() FPR_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// RAII lock over fpr::Mutex (the std::lock_guard / std::unique_lock
/// equivalent the analysis can follow).
class FPR_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) FPR_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() FPR_RELEASE() { mu_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable over fpr::Mutex. Waits take the Mutex itself (not a
/// separate lock object) so FPR_REQUIRES expresses the precondition the
/// std::unique_lock pattern left implicit: the caller holds the mutex, and
/// still holds it when the wait returns.
class CondVar {
 public:
  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

  void wait(Mutex& mu) FPR_REQUIRES(mu) { cv_.wait(mu); }

  template <class Predicate>
  void wait(Mutex& mu, Predicate stop_waiting) FPR_REQUIRES(mu) {
    while (!stop_waiting()) cv_.wait(mu);
  }

  template <class Rep, class Period>
  void wait_for(Mutex& mu, const std::chrono::duration<Rep, Period>& timeout) FPR_REQUIRES(mu) {
    cv_.wait_for(mu, timeout);
  }

 private:
  std::condition_variable_any cv_;
};

}  // namespace fpr
