#pragma once

#include <vector>

#include "graph/types.hpp"

namespace fpr {

/// A net N = {n0, n1, ..., nk}: a set of pins to be electrically connected,
/// where n0 is the signal source and the rest are sinks (Section 2).
struct Net {
  NodeId source = kInvalidNode;
  std::vector<NodeId> sinks;

  /// Source followed by sinks — the order every fpr algorithm expects.
  std::vector<NodeId> terminals() const {
    std::vector<NodeId> t{source};
    t.insert(t.end(), sinks.begin(), sinks.end());
    return t;
  }

  int pin_count() const { return 1 + static_cast<int>(sinks.size()); }
};

}  // namespace fpr
