#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "core/annotations.hpp"

namespace fpr {

/// Worker count requested by the FPR_THREADS environment variable, or
/// std::thread::hardware_concurrency() when unset/invalid. Always >= 1.
/// Read once per call, so tests can vary the variable between pools.
int default_thread_count();

/// Fixed-size thread pool with a plain FIFO task queue.
///
/// This is the repo's only concurrency primitive: width searches probe
/// candidate channel widths on it and the experiment harnesses fan circuit
/// instances out over it. Two properties matter to those callers:
///
///  - **Serial fallback.** A pool of size <= 1 spawns no threads; submit()
///    and parallel_for() run inline on the caller, in index order. Results
///    are therefore identical to a never-parallelized build.
///  - **Caller-helps waiting.** parallel_for() blocks until its batch
///    completes, but while blocked it pops and runs queued tasks (its own
///    batch's or anyone else's). Nested parallel_for — a harness task that
///    itself runs a parallel width search on the shared pool — therefore
///    cannot deadlock: every waiting thread keeps draining the queue.
class ThreadPool {
 public:
  /// Spawns `threads` workers when threads > 1, none otherwise (inline
  /// mode). Values < 1 are clamped to 1.
  explicit ThreadPool(int threads = default_thread_count());
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Worker count this pool was built with (>= 1; 1 means inline mode).
  int size() const { return size_; }

  /// Enqueues one task; the future rethrows any exception it threw.
  /// Inline mode runs the task before returning.
  std::future<void> submit(std::function<void()> fn);

  /// Runs body(0) .. body(count - 1), returning when all are done. The
  /// first exception thrown by any index is rethrown here (the remaining
  /// indices still run). Inline mode executes in index order.
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& body);

  /// Process-wide pool sized by default_thread_count() at first use.
  static ThreadPool& shared();

 private:
  void worker_loop();
  bool try_run_one();

  const int size_;
  Mutex mu_;
  CondVar cv_;
  std::deque<std::function<void()>> queue_ FPR_GUARDED_BY(mu_);
  std::vector<std::thread> workers_;  // written only in the ctor/dtor
  bool stop_ FPR_GUARDED_BY(mu_) = false;
};

/// Convenience fan-out used by the width search and harnesses: resolves a
/// thread-count request and runs body(0..count-1) on the matching pool.
///   threads == 0 -> the shared pool (FPR_THREADS / hardware default);
///   threads == 1 -> inline serial, index order;
///   threads >= 2 -> a dedicated pool of exactly that size.
void run_parallel(int threads, std::size_t count,
                  const std::function<void(std::size_t)>& body);

/// Resolves a thread-count request to a pool once, for callers that issue
/// MANY parallel_for batches against the same choice (the width search's
/// speculation rounds, the net-parallel router's waves) — run_parallel
/// would rebuild a dedicated pool per batch.
///   threads <= 0 -> the shared pool (FPR_THREADS / hardware default);
///   otherwise    -> the shared pool when it already has exactly `threads`
///                   workers, else a dedicated pool owned by the lease.
/// pool().size() == 1 means serial: parallel_for runs inline, in order.
class PoolLease {
 public:
  explicit PoolLease(int threads);
  ThreadPool& pool() const { return *pool_; }

 private:
  std::unique_ptr<ThreadPool> owned_;
  ThreadPool* pool_;
};

}  // namespace fpr
