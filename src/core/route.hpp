#pragma once

#include <span>
#include <string_view>
#include <vector>

#include "core/net.hpp"
#include "graph/path_oracle.hpp"
#include "graph/routing_tree.hpp"
#include "steiner/candidates.hpp"

namespace fpr {

/// Every routing-tree construction compared in the paper's evaluation
/// (Section 5), plus the exact reference solvers.
enum class Algorithm {
  // Graph Steiner tree heuristics (non-critical nets, Section 3).
  kKmb,
  kZel,
  kIkmb,
  kIzel,
  // Graph Steiner arborescence constructions (critical nets, Section 4).
  kDjka,
  kDom,
  kPfa,
  kIdom,
  // Exact reference solvers (small nets only).
  kExactGmst,
  kExactGsa,
};

/// Printable name matching the paper's tables ("KMB", "IZEL", ...).
std::string_view algorithm_name(Algorithm a);

/// True for algorithms that guarantee optimal source-sink pathlengths.
bool is_arborescence_algorithm(Algorithm a);

/// True for algorithms that only ever query the path oracle about terminals
/// and corridor nodes, so a radius-bounded PathOracle scope (set_scope) is a
/// pure speedup. False for the algorithms that scan full SSSP trees over
/// every graph node (PFA's MaxDom, ZEL/IZEL's triple medians, the exact
/// subset DPs).
bool algorithm_supports_scoped_paths(Algorithm a);

/// The eight heuristics of Table 1, in the paper's row order.
std::span<const Algorithm> table1_algorithms();

struct RouteOptions {
  /// Steiner-candidate enumeration for the iterated constructions
  /// (IKMB/IZEL/IDOM); ignored by the others.
  CandidateStrategy candidates = CandidateStrategy::kAllNodes;
  int max_candidates = 0;  // 0 = unlimited
  int max_iterations = 0;  // 0 = iterate until no improvement
  /// Batched Steiner-point adoption for IKMB/IZEL (see IgmstOptions).
  bool batched = false;
};

/// Routes one net with the chosen algorithm. The returned tree spans the
/// net's terminals unless the net is unroutable in the usable part of the
/// graph (check RoutingTree::spans()). Exact solvers fall back to IKMB /
/// IDOM when the net exceeds the subset-DP terminal limit.
RoutingTree route(const Graph& g, const Net& net, Algorithm algorithm, PathOracle& oracle,
                  const RouteOptions& options = {});

RoutingTree route(const Graph& g, const Net& net, Algorithm algorithm,
                  const RouteOptions& options = {});

}  // namespace fpr
