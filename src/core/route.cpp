#include "core/route.hpp"

#include <array>

#include "arbor/djka.hpp"
#include "arbor/dom.hpp"
#include "arbor/exact_gsa.hpp"
#include "arbor/idom.hpp"
#include "arbor/pfa.hpp"
#include "steiner/exact_gmst.hpp"
#include "steiner/igmst.hpp"
#include "steiner/kmb.hpp"
#include "steiner/zelikovsky.hpp"

namespace fpr {

std::string_view algorithm_name(Algorithm a) {
  switch (a) {
    case Algorithm::kKmb: return "KMB";
    case Algorithm::kZel: return "ZEL";
    case Algorithm::kIkmb: return "IKMB";
    case Algorithm::kIzel: return "IZEL";
    case Algorithm::kDjka: return "DJKA";
    case Algorithm::kDom: return "DOM";
    case Algorithm::kPfa: return "PFA";
    case Algorithm::kIdom: return "IDOM";
    case Algorithm::kExactGmst: return "OPT-GMST";
    case Algorithm::kExactGsa: return "OPT-GSA";
  }
  return "?";
}

bool is_arborescence_algorithm(Algorithm a) {
  switch (a) {
    case Algorithm::kDjka:
    case Algorithm::kDom:
    case Algorithm::kPfa:
    case Algorithm::kIdom:
    case Algorithm::kExactGsa:
      return true;
    default:
      return false;
  }
}

bool algorithm_supports_scoped_paths(Algorithm a) {
  switch (a) {
    case Algorithm::kKmb:
    case Algorithm::kIkmb:
    case Algorithm::kDjka:
    case Algorithm::kDom:
    case Algorithm::kIdom:
      return true;
    default:
      return false;
  }
}

std::span<const Algorithm> table1_algorithms() {
  static constexpr std::array<Algorithm, 8> kOrder{
      Algorithm::kKmb,  Algorithm::kZel, Algorithm::kIkmb, Algorithm::kIzel,
      Algorithm::kDjka, Algorithm::kDom, Algorithm::kPfa,  Algorithm::kIdom,
  };
  return kOrder;
}

RoutingTree route(const Graph& g, const Net& net, Algorithm algorithm, PathOracle& oracle,
                  const RouteOptions& options) {
  const std::vector<NodeId> terminals = net.terminals();
  const IgmstOptions ig{options.candidates, options.max_candidates, options.max_iterations,
                        options.batched};
  const IdomOptions id{options.candidates, options.max_candidates, options.max_iterations};

  switch (algorithm) {
    case Algorithm::kKmb:
      return kmb(g, terminals, oracle);
    case Algorithm::kZel:
      return zelikovsky(g, terminals, oracle);
    case Algorithm::kIkmb:
      return ikmb(g, terminals, oracle, ig);
    case Algorithm::kIzel:
      return izel(g, terminals, oracle, ig);
    case Algorithm::kDjka:
      return djka(g, terminals, oracle);
    case Algorithm::kDom:
      return dom(g, terminals, oracle);
    case Algorithm::kPfa:
      return pfa(g, terminals, oracle);
    case Algorithm::kIdom:
      return idom(g, terminals, oracle, id);
    case Algorithm::kExactGmst: {
      auto result = exact_gmst(g, terminals, oracle);
      return result ? std::move(*result) : ikmb(g, terminals, oracle, ig);
    }
    case Algorithm::kExactGsa: {
      auto result = exact_gsa(g, terminals, oracle);
      return result ? std::move(*result) : idom(g, terminals, oracle, id);
    }
  }
  return RoutingTree(g, {});
}

RoutingTree route(const Graph& g, const Net& net, Algorithm algorithm,
                  const RouteOptions& options) {
  PathOracle oracle(g);
  return route(g, net, algorithm, oracle, options);
}

}  // namespace fpr
