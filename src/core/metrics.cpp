#include "core/metrics.hpp"

#include <algorithm>

namespace fpr {

TreeMetrics measure(const Graph& g, const Net& net, const RoutingTree& tree, PathOracle& oracle) {
  (void)g;
  TreeMetrics m;
  m.wirelength = tree.cost();
  const std::vector<NodeId> terminals = net.terminals();
  m.spans_net = tree.spans(terminals);
  m.max_pathlength = tree.max_path_length(net.source, net.sinks);

  const auto& spt = oracle.from(net.source);
  Weight opt = 0;
  bool all_reachable = true;
  for (const NodeId s : net.sinks) {
    if (!spt.reached(s)) {
      all_reachable = false;
      continue;
    }
    opt = std::max(opt, spt.distance(s));
  }
  m.optimal_max_pathlength = all_reachable ? opt : kInfiniteWeight;

  m.shortest_paths = m.spans_net && all_reachable;
  if (m.shortest_paths) {
    for (const NodeId s : net.sinks) {
      if (!weight_eq(tree.path_length(net.source, s), spt.distance(s))) {
        m.shortest_paths = false;
        break;
      }
    }
  }
  return m;
}

double percent_vs(Weight value, Weight reference) {
  if (reference == 0) return 0;
  return 100.0 * (value - reference) / reference;
}

}  // namespace fpr
