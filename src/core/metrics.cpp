#include "core/metrics.hpp"

#include <algorithm>
#include <cstdio>

namespace fpr {

void Counters::reset() {
  trees_measured.store(0, std::memory_order_relaxed);
  checks_run.store(0, std::memory_order_relaxed);
  check_violations.store(0, std::memory_order_relaxed);
  fuzz_cases.store(0, std::memory_order_relaxed);
  shrink_steps.store(0, std::memory_order_relaxed);
  parallel_waves.store(0, std::memory_order_relaxed);
  nets_speculated.store(0, std::memory_order_relaxed);
  nets_spec_accepted.store(0, std::memory_order_relaxed);
  nets_spec_recomputed.store(0, std::memory_order_relaxed);
  negotiate_runs.store(0, std::memory_order_relaxed);
  negotiate_passes.store(0, std::memory_order_relaxed);
  pattern_attempts.store(0, std::memory_order_relaxed);
  pattern_accepts.store(0, std::memory_order_relaxed);
  congestion_reliefs.store(0, std::memory_order_relaxed);
  move_to_front_reorders.store(0, std::memory_order_relaxed);
  repair_events.store(0, std::memory_order_relaxed);
  repair_nets_ripped.store(0, std::memory_order_relaxed);
  repair_nets_rerouted.store(0, std::memory_order_relaxed);
}

Counters& counters() {
  static Counters instance;
  return instance;
}

TreeMetrics measure(const Graph& g, const Net& net, const RoutingTree& tree, PathOracle& oracle) {
  (void)g;
  counters().trees_measured.fetch_add(1, std::memory_order_relaxed);
  TreeMetrics m;
  m.wirelength = tree.cost();
  const std::vector<NodeId> terminals = net.terminals();
  m.spans_net = tree.spans(terminals);
  m.max_pathlength = tree.max_path_length(net.source, net.sinks);

  const auto& spt = oracle.from(net.source);
  Weight opt = 0;
  bool all_reachable = true;
  for (const NodeId s : net.sinks) {
    if (!spt.reached(s)) {
      all_reachable = false;
      continue;
    }
    opt = std::max(opt, spt.distance(s));
  }
  m.optimal_max_pathlength = all_reachable ? opt : kInfiniteWeight;

  m.shortest_paths = m.spans_net && all_reachable;
  if (m.shortest_paths) {
    for (const NodeId s : net.sinks) {
      if (!weight_eq(tree.path_length(net.source, s), spt.distance(s))) {
        m.shortest_paths = false;
        break;
      }
    }
  }
  return m;
}

OracleStats oracle_stats(const PathOracle& oracle) {
  OracleStats s;
  s.dijkstra_runs = oracle.dijkstra_runs();
  s.cache_hits = oracle.cache_hits();
  s.cache_misses = oracle.cache_misses();
  s.hit_rate = oracle.hit_rate();
  return s;
}

std::string format_oracle_stats(const OracleStats& stats) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "dijkstra runs %zu, cache %zu/%zu hits (%.1f%%)",
                stats.dijkstra_runs, stats.cache_hits, stats.cache_hits + stats.cache_misses,
                100.0 * stats.hit_rate);
  return std::string(buf);
}

double percent_vs(Weight value, Weight reference) {
  if (reference == 0) return 0;
  return 100.0 * (value - reference) / reference;
}

}  // namespace fpr
