#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

/// FPR_CHECK — always-on precondition checking with context.
///
/// The repo's public containers (Graph, Device, GridGraph, the workload
/// builders) used to guard their preconditions with bare assert(), which
/// (a) compiles out of Release builds, turning misuse into silent memory
/// corruption, and (b) reports no context — no node/edge/width ids, just a
/// stringified condition. FPR_CHECK is the single replacement: the condition
/// is always evaluated, and a violation throws fpr::ContractViolation whose
/// message carries the failed condition, the source location, and a
/// caller-supplied streamed context expression:
///
///   FPR_CHECK(u >= 0 && u < node_count(),
///             "add_edge endpoint u=" << u << " outside node range [0, "
///                                    << node_count() << ")");
///
/// Throwing (rather than aborting) keeps misuse testable — negative tests
/// simply EXPECT_THROW — and lets long-running services degrade gracefully
/// instead of dying on one malformed request. The checks guard O(1)
/// comparisons at API boundaries, not inner loops, so the always-on cost is
/// noise (the Dijkstra hot path contains none).
///
/// Header-only and layer-free (like core/rng.hpp): the bottom-of-stack
/// graph library uses it without linking fpr_core.
namespace fpr {

class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void contract_failure(const char* condition, const char* file, int line,
                                          const std::string& context) {
  std::ostringstream os;
  os << "FPR_CHECK failed: " << condition << " [" << file << ":" << line << "]";
  if (!context.empty()) os << " — " << context;
  throw ContractViolation(os.str());
}

}  // namespace detail
}  // namespace fpr

#define FPR_CHECK(condition, context_stream)                                     \
  do {                                                                           \
    if (!(condition)) {                                                          \
      std::ostringstream fpr_check_os_;                                          \
      fpr_check_os_ << context_stream; /* NOLINT */                              \
      ::fpr::detail::contract_failure(#condition, __FILE__, __LINE__,            \
                                      fpr_check_os_.str());                      \
    }                                                                            \
  } while (false)
