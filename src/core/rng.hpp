#pragma once

#include <cstdint>
#include <string_view>

/// Deterministic, platform-portable seed mixing shared by the fault model
/// (src/fpga/faults), the property fuzzer (src/check), and — via
/// tests/test_util.hpp — every test suite.
///
/// Header-only and dependency-free on purpose: it sits below every layer of
/// the library stack (fpga and graph may use it without linking fpr_core).
/// Unlike std::uniform_int_distribution the outputs are identical on every
/// platform and standard library, which is what makes persisted repro seeds
/// and committed fault-sweep records portable.
namespace fpr {

/// splitmix64 finalizer — the single seed-mixing primitive.
constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

constexpr std::uint64_t mix64(std::uint64_t a, std::uint64_t b) { return mix64(a ^ mix64(b)); }

/// FNV-1a over a string — stable salt derived from a name (test-suite names,
/// fault-category tags).
constexpr std::uint64_t salt64(std::string_view name) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

/// Tiny self-contained deterministic generator (counter-mode splitmix64
/// stream). Good enough for fuzzing and fault sampling; NOT a crypto RNG.
class SplitMixRng {
 public:
  explicit SplitMixRng(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() { return mix64(state_++); }

  /// Uniform-ish value in [0, bound); bound > 0.
  std::uint64_t below(std::uint64_t bound) { return next() % bound; }

  /// Uniform-ish value in [lo, hi] inclusive.
  int range(int lo, int hi) {
    return lo + static_cast<int>(below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

 private:
  std::uint64_t state_;
};

}  // namespace fpr
