#pragma once

#include <cstdint>
#include <string_view>

/// Deterministic, platform-portable seed mixing shared by the fault model
/// (src/fpga/faults), the property fuzzer (src/check), and — via
/// tests/test_util.hpp — every test suite.
///
/// Header-only and dependency-free on purpose: it sits below every layer of
/// the library stack (fpga and graph may use it without linking fpr_core).
/// Unlike std::uniform_int_distribution the outputs are identical on every
/// platform and standard library, which is what makes persisted repro seeds
/// and committed fault-sweep records portable.
namespace fpr {

/// splitmix64 finalizer — the single seed-mixing primitive.
constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

constexpr std::uint64_t mix64(std::uint64_t a, std::uint64_t b) { return mix64(a ^ mix64(b)); }

/// FNV-1a over a string — stable salt derived from a name (test-suite names,
/// fault-category tags).
constexpr std::uint64_t salt64(std::string_view name) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

/// Tiny self-contained deterministic generator (counter-mode splitmix64
/// stream). Good enough for fuzzing and fault sampling; NOT a crypto RNG.
class SplitMixRng {
 public:
  using result_type = std::uint64_t;

  explicit SplitMixRng(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() { return mix64(state_++); }

  /// URBG interface, so SplitMixRng works with the draw_* helpers below.
  result_type operator()() { return next(); }
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  /// Uniform-ish value in [0, bound); bound > 0.
  std::uint64_t below(std::uint64_t bound) { return next() % bound; }

  /// Uniform-ish value in [lo, hi] inclusive.
  int range(int lo, int hi) {
    return lo + static_cast<int>(below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

 private:
  std::uint64_t state_;
};

// ---------------------------------------------------------------------------
// Portable bounded draws.
//
// std::uniform_int_distribution / std::normal_distribution are
// implementation-defined: libstdc++, libc++ and MSVC consume the engine
// differently and map its output differently, so the same seed produces
// different case streams on different standard libraries. Every draw in
// deterministic code (src/, bench/) goes through these helpers instead,
// which consume exactly one (draw_below/draw_range/draw_unit) or twelve
// (draw_gaussian) engine outputs and use only exactly-specified integer and
// IEEE-754 arithmetic. `fpr-lint` rule `nondet-random` enforces this.
//
// Rng is any 64-bit URBG (std::mt19937_64 — itself fully specified by the
// standard — or SplitMixRng).
// ---------------------------------------------------------------------------

/// Uniform-ish value in [0, bound); bound > 0. Uses a plain modulo: the
/// bias is < bound/2^64, irrelevant for workload generation, and the cost
/// of rejection sampling (a data-dependent number of engine draws) would
/// make streams harder to reason about.
template <class Rng>
std::uint64_t draw_below(Rng& rng, std::uint64_t bound) {
  return rng() % bound;
}

/// Uniform-ish integer in [lo, hi] inclusive; requires lo <= hi.
template <class Rng>
int draw_range(Rng& rng, int lo, int hi) {
  return lo + static_cast<int>(
                  draw_below(rng, static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1));
}

/// Uniform double in [0, 1) with 53 random bits — the exact dyadic value
/// (rng() >> 11) * 2^-53, identical on every IEEE-754 platform.
template <class Rng>
double draw_unit(Rng& rng) {
  return static_cast<double>(rng() >> 11) * 0x1.0p-53;
}

/// Approximately standard-normal deviate via the Irwin–Hall sum of twelve
/// uniforms (mean 6, variance 1). Chosen over Box–Muller/ziggurat because it
/// needs no transcendental functions — libm's sin/log differ across
/// platforms in the last ulp, which would fork the stream — and the tails
/// (clipped at |z| = 6) don't matter for pin scatter.
template <class Rng>
double draw_gaussian(Rng& rng) {
  double sum = 0;
  for (int i = 0; i < 12; ++i) sum += draw_unit(rng);
  return sum - 6.0;
}

}  // namespace fpr
