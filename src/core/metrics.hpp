#pragma once

#include "core/net.hpp"
#include "graph/path_oracle.hpp"
#include "graph/routing_tree.hpp"

namespace fpr {

/// The two quality measures of the paper's evaluation (Table 1), plus the
/// flags the tests assert on.
struct TreeMetrics {
  Weight wirelength = 0;            // total tree cost
  Weight max_pathlength = 0;        // worst source-sink pathlength in the tree
  Weight optimal_max_pathlength = 0;  // max over sinks of minpath_G(n0, sink)
  bool spans_net = false;
  bool shortest_paths = false;  // every sink reached at graph distance
};

/// Measures a routing tree against its net. Uses the oracle's SSSP tree from
/// the net's source for the optimality references.
TreeMetrics measure(const Graph& g, const Net& net, const RoutingTree& tree, PathOracle& oracle);

/// Percent delta of `value` w.r.t. `reference`, as Table 1 reports it:
/// positive = disimprovement, negative = improvement. Returns 0 when the
/// reference is zero (both costs then equal on meaningful inputs).
double percent_vs(Weight value, Weight reference);

}  // namespace fpr
