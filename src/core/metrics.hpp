#pragma once

#include <cstddef>
#include <string>

#include "core/net.hpp"
#include "graph/path_oracle.hpp"
#include "graph/routing_tree.hpp"

namespace fpr {

/// The two quality measures of the paper's evaluation (Table 1), plus the
/// flags the tests assert on.
struct TreeMetrics {
  Weight wirelength = 0;            // total tree cost
  Weight max_pathlength = 0;        // worst source-sink pathlength in the tree
  Weight optimal_max_pathlength = 0;  // max over sinks of minpath_G(n0, sink)
  bool spans_net = false;
  bool shortest_paths = false;  // every sink reached at graph distance
};

/// Measures a routing tree against its net. Uses the oracle's SSSP tree from
/// the net's source for the optimality references.
TreeMetrics measure(const Graph& g, const Net& net, const RoutingTree& tree, PathOracle& oracle);

/// Snapshot of a PathOracle's shortest-path cache effectiveness: how often
/// the Section-3 "factor out common computations" cache actually paid off.
struct OracleStats {
  std::size_t dijkstra_runs = 0;
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
  double hit_rate = 0;  // hits / (hits + misses), 0 when never queried
};

OracleStats oracle_stats(const PathOracle& oracle);

/// One-line rendering for bench/harness logs, e.g.
/// "dijkstra runs 12, cache 240/252 hits (95.2%)".
std::string format_oracle_stats(const OracleStats& stats);

/// Percent delta of `value` w.r.t. `reference`, as Table 1 reports it:
/// positive = disimprovement, negative = improvement. Returns 0 when the
/// reference is zero (both costs then equal on meaningful inputs).
double percent_vs(Weight value, Weight reference);

}  // namespace fpr
