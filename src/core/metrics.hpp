#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

#include "core/net.hpp"
#include "graph/path_oracle.hpp"
#include "graph/routing_tree.hpp"

namespace fpr {

/// Process-wide observability counters, bumped by measure() and by the
/// src/check oracle/fuzz subsystem. Atomic so the parallel sweeps can bump
/// them from worker threads. Lock-free by design: every member is its own
/// std::atomic, so there is no capability for core/annotations.hpp to guard
/// — the clang thread-safety CI job checks this file compiles with the
/// analysis enabled precisely because any future non-atomic member added
/// here must come with a Mutex and FPR_GUARDED_BY.
///
/// They are RESETTABLE (reset(), and test fixtures call reset in SetUp) so
/// that any test asserting on them is order-independent: under `ctest -j`
/// or gtest shuffling, whatever ran earlier in the same process must not
/// leak into the assertion.
struct Counters {
  std::atomic<std::uint64_t> trees_measured{0};   // measure() calls
  std::atomic<std::uint64_t> checks_run{0};       // check-oracle invocations
  std::atomic<std::uint64_t> check_violations{0}; // failed oracle invocations
  std::atomic<std::uint64_t> fuzz_cases{0};       // generated fuzz cases
  std::atomic<std::uint64_t> shrink_steps{0};     // accepted shrink mutations

  // Net-parallel router observability (router/partition wave scheduler,
  // DESIGN.md §11). accepted + recomputed == speculated at quiescence;
  // the accepted/speculated ratio is the scheduler's quality measure.
  std::atomic<std::uint64_t> parallel_waves{0};    // speculation waves launched
  std::atomic<std::uint64_t> nets_speculated{0};   // concurrent speculative routes
  std::atomic<std::uint64_t> nets_spec_accepted{0};   // footprint-clean, committed as-is
  std::atomic<std::uint64_t> nets_spec_recomputed{0}; // conflicted, rerouted serially

  // Negotiated-congestion mode (router/negotiate, DESIGN.md §13).
  std::atomic<std::uint64_t> negotiate_runs{0};    // route_circuit calls in negotiated mode
  std::atomic<std::uint64_t> negotiate_passes{0};  // rip-up-and-reroute passes executed
  std::atomic<std::uint64_t> pattern_attempts{0};  // two-pin corridor probes tried
  std::atomic<std::uint64_t> pattern_accepts{0};   // probes shipped as final pass routes

  // Paper-mode-only machinery engagement. The mode-gating contract
  // (negotiate_paper_boundary_test): neither may advance during a
  // negotiated run — relief and move-to-front both assume the paper mode's
  // exclusive wire ownership.
  std::atomic<std::uint64_t> congestion_reliefs{0};       // CongestionRelief guards built
  std::atomic<std::uint64_t> move_to_front_reorders{0};   // inter-pass reorders applied

  // Incremental ECO repair (router/repair, DESIGN.md §14). ripped >= the
  // delta's direct hits (cone expansion only adds); rerouted counts the
  // cone nets that ended kRouted after the event.
  std::atomic<std::uint64_t> repair_events{0};        // repair_route calls
  std::atomic<std::uint64_t> repair_nets_ripped{0};   // cone nets ripped up
  std::atomic<std::uint64_t> repair_nets_rerouted{0}; // cone nets routed again

  /// Zeroes every counter.
  void reset();
};

/// The process-global counter instance.
Counters& counters();

/// The two quality measures of the paper's evaluation (Table 1), plus the
/// flags the tests assert on.
struct TreeMetrics {
  Weight wirelength = 0;            // total tree cost
  Weight max_pathlength = 0;        // worst source-sink pathlength in the tree
  Weight optimal_max_pathlength = 0;  // max over sinks of minpath_G(n0, sink)
  bool spans_net = false;
  bool shortest_paths = false;  // every sink reached at graph distance
};

/// Measures a routing tree against its net. Uses the oracle's SSSP tree from
/// the net's source for the optimality references.
TreeMetrics measure(const Graph& g, const Net& net, const RoutingTree& tree, PathOracle& oracle);

/// Snapshot of a PathOracle's shortest-path cache effectiveness: how often
/// the Section-3 "factor out common computations" cache actually paid off.
struct OracleStats {
  std::size_t dijkstra_runs = 0;
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
  double hit_rate = 0;  // hits / (hits + misses), 0 when never queried
};

OracleStats oracle_stats(const PathOracle& oracle);

/// One-line rendering for bench/harness logs, e.g.
/// "dijkstra runs 12, cache 240/252 hits (95.2%)".
std::string format_oracle_stats(const OracleStats& stats);

/// Percent delta of `value` w.r.t. `reference`, as Table 1 reports it:
/// positive = disimprovement, negative = improvement. Returns 0 when the
/// reference is zero (both costs then equal on meaningful inputs).
double percent_vs(Weight value, Weight reference);

}  // namespace fpr
