#include "router/negotiate.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <utility>
#include <vector>

#include "core/contract.hpp"
#include "core/parallel.hpp"
#include "graph/budget.hpp"
#include "graph/congestion_layer.hpp"
#include "graph/dijkstra.hpp"
#include "router/internal.hpp"
#include "router/partition.hpp"
#include "router/patterns.hpp"

namespace fpr {

namespace testhooks {
std::atomic<bool> negotiate_break_history_update{false};
}  // namespace testhooks

namespace {

/// Unique wire nodes touched by a committed edge set, ascending — the
/// occupancy a net charges to the congestion layer. Matches the feasibility
/// oracle's replay (RoutingTree::nodes() filtered to wires).
std::vector<NodeId> wire_nodes_of(const Device& device, const std::vector<EdgeId>& edges) {
  const Graph& g = device.graph();
  std::vector<NodeId> wires;
  wires.reserve(edges.size() + 1);
  for (const EdgeId e : edges) {
    const Graph::Edge ed = g.edge(e);
    for (const NodeId v : {ed.u, ed.v}) {
      if (device.is_wire(v)) wires.push_back(v);
    }
  }
  std::sort(wires.begin(), wires.end());
  wires.erase(std::unique(wires.begin(), wires.end()), wires.end());
  return wires;
}

/// Everything the per-net routine needs; one instance per negotiated run.
struct NegotiateContext {
  Device& device;
  const Circuit& circuit;
  const RouterOptions& options;
  CongestionLayer& layer;
  WorkBudget& budget;
};

/// Pattern-probe accounting for one run; folded into the RoutingResult, so
/// it must be counted exactly once per net per pass (at replay time in wave
/// mode) to stay bit-identical across thread counts.
struct PatternStats {
  long long attempts = 0;
  long long accepts = 0;
};

/// A negotiated commit writes the committed wires' occupancy plus the
/// repriced weights of their incident edges; every such edge endpoint sits
/// within Chebyshev distance 2 of its wire on the half-tile grid, so the
/// wire tiles padded by 2 cover the whole write set.
constexpr int kWriteHalo = 2;

/// Charges the net's wires to the layer (repricing as it goes, so later
/// nets in the same pass see the updated present costs) and reports the
/// write rectangle for wave replay dirty-tracking.
void commit_occupancy(NegotiateContext& ctx, NetRouteResult& record,
                      const std::vector<NodeId>& wires, TileRect* write_box) {
  for (const NodeId w : wires) ctx.layer.add_occupant(w);
  record.wire_nodes_used = static_cast<int>(wires.size());
  if (write_box != nullptr) {
    TileRect box;
    for (const NodeId w : wires) {
      const Device::TilePos t = ctx.device.node_tile(w);
      box.include(t.x, t.y);
    }
    *write_box = box.empty() ? box : box.expanded(kWriteHalo);
  }
}

/// A pattern accept IS the net's measurement: the probe's path cost is the
/// live wirelength and (two-pin) worst pathlength, and stands in for the
/// Dijkstra optimum bound as a recorded upper bound — running a full SSSP
/// just to tighten a diagnostic would cancel the fast path's point.
void fill_pattern_record(NetRouteResult& record, std::vector<EdgeId>&& edges, Weight cost) {
  record.status = NetStatus::kRouted;
  record.edges = std::move(edges);
  record.wirelength = cost;
  record.max_pathlength = cost;
  record.optimal_max_pathlength = cost;
  record.physical_wirelength = static_cast<int>(record.edges.size());
  record.physical_max_path = static_cast<int>(record.edges.size());
}

/// Routes net `idx` on the live device in negotiated mode: the pattern fast
/// path for two-pin connections, else one whole-net scoped engine attempt.
/// No fault-retry ladder and no congestion relief — wires are never
/// consumed here, so a defect detour emerges from ordinary pricing, and the
/// mode-gating contract (negotiate_paper_boundary_test) pins that the
/// paper-mode relief machinery stays disengaged.
void route_net_live(NegotiateContext& ctx, std::size_t idx, NetRouteResult& record,
                    std::vector<std::size_t>& failed, PatternStats& patterns,
                    TileRect* write_box) {
  Device& device = ctx.device;
  const RouterOptions& options = ctx.options;
  WorkBudget& budget = ctx.budget;
  const Net net = to_graph_net(device, ctx.circuit.nets[idx]);
  if (net.sinks.empty()) {  // all pins on one block: trivially routed
    record.status = NetStatus::kRouted;
    return;
  }
  Graph& g = device.graph();

  if (options.pattern_route && net.sinks.size() == 1) {
    ++patterns.attempts;
    counters().pattern_attempts.fetch_add(1, std::memory_order_relaxed);
    PatternProbe probe = pattern_route(device, ctx.layer, net.source, net.sinks[0], &budget);
    if (probe.accepted) {
      ++patterns.accepts;
      counters().pattern_accepts.fetch_add(1, std::memory_order_relaxed);
      fill_pattern_record(record, std::move(probe.edges), probe.cost);
      commit_occupancy(ctx, record, wire_nodes_of(device, record.edges), write_box);
      return;
    }
    if (probe.budget_aborted) {
      record.status = NetStatus::kAbortedBudget;
      failed.push_back(idx);
      return;
    }
    // Probe found no free corridor path (congestion or faults): fall back
    // to the full engine, which may still share wires at a price.
  }

  PathOracle oracle(g);
  oracle.set_budget(&budget);
  const std::vector<NodeId> terminals = net.terminals();
  const bool critical = ctx.circuit.nets[idx].critical;
  const Algorithm algo = critical ? options.critical_algorithm : options.algorithm;
  if (algorithm_supports_scoped_paths(algo)) oracle.set_scope(terminals);
  const RoutingTree tree = route(g, net, algo, oracle, options.route_options);
  if (!tree.spans(terminals)) {
    record.status =
        budget.exhausted() ? NetStatus::kAbortedBudget : NetStatus::kFailedCongestion;
    failed.push_back(idx);
    return;
  }
  // Measurement mirrors paper mode's rules (router.cpp): post-hoc, never
  // budget-charged, and never through budget-truncated cached trees — the
  // per-net oracle is reusable only for an unbudgeted attempt.
  oracle.set_budget(nullptr);
  TreeMetrics metrics;
  if (budget.unlimited()) {
    metrics = measure(g, net, tree, oracle);
  } else {
    PathOracle measure_oracle(g);
    metrics = measure(g, net, tree, measure_oracle);
  }
  record.status = NetStatus::kRouted;
  record.edges = tree.edges();
  record.wirelength = metrics.wirelength;
  record.max_pathlength = metrics.max_pathlength;
  record.optimal_max_pathlength = metrics.optimal_max_pathlength;
  record.physical_wirelength = static_cast<int>(record.edges.size());
  record.physical_max_path = tree.max_path_edge_count(net.source, net.sinks);
  commit_occupancy(ctx, record, wire_nodes_of(device, record.edges), write_box);
}

// ---------------------------------------------------------------------------
// Net-parallel wave scheduling, mirroring router.cpp's scheme (DESIGN.md
// §11) over negotiated commits: speculate partition-independent nets
// against the wave-start graph + layer state, replay in serial order, and
// accept a speculation iff nothing committed since wave start intersects
// the rectangle of state it read. One negotiated twist: a clean failed
// speculation IS final (there is no retry ladder to run live), so it is
// accepted too.
// ---------------------------------------------------------------------------

/// Collapses every Dijkstra run of a speculative route into one rectangle
/// over the device's unified tile grid.
class BoxFootprint final : public SearchFootprintObserver {
 public:
  explicit BoxFootprint(const Device& device) : device_(&device) {}

  void on_search(std::span<const NodeId> labeled) override {
    for (const NodeId v : labeled) {
      const Device::TilePos t = device_->node_tile(v);
      box_.include(t.x, t.y);
    }
  }

  const TileRect& box() const { return box_; }

 private:
  const Device* device_;
  TileRect box_;
};

/// Same locality argument as paper mode: every read of a corridor-confined
/// search sits within Chebyshev distance 2 of a labeled node (or, for
/// pattern probes, inside the probed corridor rectangles, which the read
/// box also folds in).
constexpr int kReadHalo = 2;

struct Speculation {
  std::size_t pos = 0;  // position in the pass order
  std::size_t idx = 0;  // net index
  bool spans = false;
  bool pattern_attempted = false;  // probe ran (counts as an attempt)
  bool pattern = false;            // probe accepted: edges/cost are the route
  long long work = 0;              // expansions a serial route would charge
  TileRect read_box;
  std::vector<EdgeId> edges;
  TreeMetrics metrics;  // engine route measurement (unused for patterns)
  Weight pattern_cost = 0;
  int physical_max_path = 0;
};

/// Read-only speculative mirror of route_net_live against the wave-start
/// state. Runs on pool workers; outputs only `spec`.
void speculate_net(const Device& device, const Circuit& circuit, const RouterOptions& options,
                   const CongestionLayer& layer, Speculation& spec) {
  const Graph& g = device.graph();
  BoxFootprint footprint(device);
  ScopedSearchFootprint guard(&footprint);
  const Net net = to_graph_net(device, circuit.nets[spec.idx]);
  WorkBudget local;  // unlimited: tracks expansions for work accounting
  TileRect probe_box;
  if (options.pattern_route && net.sinks.size() == 1) {
    spec.pattern_attempted = true;
    PatternProbe probe = pattern_route(device, layer, net.source, net.sinks[0], &local);
    probe_box = probe.probed_area;
    if (probe.accepted) {
      spec.pattern = true;
      spec.spans = true;
      spec.edges = std::move(probe.edges);
      spec.pattern_cost = probe.cost;
      spec.physical_max_path = static_cast<int>(spec.edges.size());
      spec.work = local.used;
      spec.read_box = probe.probed_area.expanded(kReadHalo);
      return;
    }
  }
  PathOracle oracle(g);
  oracle.set_budget(&local);
  const std::vector<NodeId> terminals = net.terminals();
  const bool critical = circuit.nets[spec.idx].critical;
  const Algorithm algo = critical ? options.critical_algorithm : options.algorithm;
  oracle.set_scope(terminals);
  RoutingTree tree = route(g, net, algo, oracle, options.route_options);
  spec.spans = tree.spans(terminals);
  if (spec.spans) {
    // Mirror route_net_live: measurement is unbudgeted there, so it must
    // not count toward spec.work here either.
    oracle.set_budget(nullptr);
    spec.metrics = measure(g, net, tree, oracle);
    spec.edges = tree.edges();
    spec.physical_max_path = tree.max_path_edge_count(net.source, net.sinks);
  }
  spec.work = local.used;
  TileRect box = footprint.box();
  box.include(probe_box);
  spec.read_box = box.expanded(kReadHalo);
}

/// Replay-time acceptance test; true when the speculation was applied.
bool accept_speculation(NegotiateContext& ctx, Speculation& spec, NetRouteResult& record,
                        std::vector<std::size_t>& failed, PatternStats& patterns,
                        std::vector<TileRect>& wave_writes) {
  for (const TileRect& w : wave_writes) {
    if (spec.read_box.intersects(w)) return false;
  }
  counters().nets_spec_accepted.fetch_add(1, std::memory_order_relaxed);
  ctx.budget.used += spec.work;
  // Pattern accounting happens here — exactly once per net per pass, never
  // for rejected speculations (their live recompute counts instead) — so
  // the result's pattern fields stay bit-identical across thread counts.
  if (spec.pattern_attempted) {
    ++patterns.attempts;
    counters().pattern_attempts.fetch_add(1, std::memory_order_relaxed);
  }
  if (!spec.spans) {
    // Final in negotiated mode: no retry ladder would follow a live attempt.
    record.status = NetStatus::kFailedCongestion;
    failed.push_back(spec.idx);
    return true;
  }
  if (spec.pattern) {
    ++patterns.accepts;
    counters().pattern_accepts.fetch_add(1, std::memory_order_relaxed);
    fill_pattern_record(record, std::move(spec.edges), spec.pattern_cost);
  } else {
    record.status = NetStatus::kRouted;
    record.edges = std::move(spec.edges);
    record.wirelength = spec.metrics.wirelength;
    record.max_pathlength = spec.metrics.max_pathlength;
    record.optimal_max_pathlength = spec.metrics.optimal_max_pathlength;
    record.physical_wirelength = static_cast<int>(record.edges.size());
    record.physical_max_path = spec.physical_max_path;
  }
  TileRect write_box;
  commit_occupancy(ctx, record, wire_nodes_of(ctx.device, record.edges), &write_box);
  if (!write_box.empty()) wave_writes.push_back(write_box);
  return true;
}

// Wave shaping: fixed constants, deliberately NOT derived from the thread
// count (router.cpp has the full argument).
constexpr std::size_t kWaveNets = 16;
constexpr std::size_t kWaveScan = 64;

/// One full negotiation pass in wave mode, writing into `nets`.
void route_pass_waves(NegotiateContext& ctx, const std::vector<std::size_t>& order,
                      std::vector<NetRouteResult>& nets, std::vector<std::size_t>& failed,
                      PatternStats& patterns, ThreadPool& pool, const PartitionTree& ptree,
                      const std::vector<int>& net_region) {
  Device& device = ctx.device;
  std::vector<Speculation> wave;
  std::vector<int> regions;
  std::vector<TileRect> wave_writes;
  std::size_t pos = 0;
  while (pos < order.size()) {
    wave.clear();
    regions.clear();
    const std::size_t scan_end = std::min(order.size(), pos + kWaveScan);
    std::size_t span_end = pos + 1;
    for (std::size_t p = pos; p < scan_end && wave.size() < kWaveNets; ++p) {
      const int region = net_region[order[p]];
      if (region < 0) continue;  // never speculated: routes live at replay
      bool independent = true;
      for (const int r : regions) {
        if (!ptree.independent(region, r)) {
          independent = false;
          break;
        }
      }
      if (!independent) continue;
      regions.push_back(region);
      Speculation spec;
      spec.pos = p;
      spec.idx = order[p];
      wave.push_back(std::move(spec));
      span_end = p + 1;
    }
    if (wave.size() < 2) {
      route_net_live(ctx, order[pos], nets[order[pos]], failed, patterns, nullptr);
      ++pos;
      continue;
    }

    counters().parallel_waves.fetch_add(1, std::memory_order_relaxed);
    counters().nets_speculated.fetch_add(wave.size(), std::memory_order_relaxed);
    if (!device.graph().tiled()) device.graph().csr();
    pool.parallel_for(wave.size(), [&](std::size_t i) {
      speculate_net(device, ctx.circuit, ctx.options, ctx.layer, wave[i]);
    });

    wave_writes.clear();
    std::size_t next = 0;
    for (std::size_t p = pos; p < span_end; ++p) {
      const std::size_t idx = order[p];
      NetRouteResult& record = nets[idx];
      Speculation* spec = nullptr;
      if (next < wave.size() && wave[next].pos == p) spec = &wave[next++];
      if (spec != nullptr &&
          accept_speculation(ctx, *spec, record, failed, patterns, wave_writes)) {
        continue;
      }
      if (spec != nullptr) {
        counters().nets_spec_recomputed.fetch_add(1, std::memory_order_relaxed);
      }
      TileRect write_box;
      route_net_live(ctx, idx, record, failed, patterns, &write_box);
      if (!write_box.empty()) wave_writes.push_back(write_box);
    }
    pos = span_end;
  }
}

/// Partition-tree region per net, or -1 for always-live nets — the same
/// assignment rule as paper mode (router.cpp::schedule_regions): pattern
/// probes stay inside the terminal box plus corridor margin, well within
/// the padded scheduling region.
std::vector<int> schedule_regions(const Circuit& circuit, const RouterOptions& options,
                                  const PartitionTree& ptree, const TileRect& bounds) {
  std::vector<int> regions(circuit.nets.size(), -1);
  for (std::size_t i = 0; i < circuit.nets.size(); ++i) {
    const CircuitNet& net = circuit.nets[i];
    const Algorithm algo = net.critical ? options.critical_algorithm : options.algorithm;
    if (!algorithm_supports_scoped_paths(algo)) continue;
    TileRect box;
    box.include(2 * net.source.x + 1, 2 * net.source.y + 1);
    bool trivial = true;
    for (const PinRef& p : net.sinks) {
      if (p != net.source) trivial = false;
      box.include(2 * p.x + 1, 2 * p.y + 1);
    }
    if (trivial) continue;
    const int span = box.width() > box.height() ? box.width() : box.height();
    regions[i] = ptree.assign(box.expanded(6 + span / 4).clipped(bounds));
  }
  return regions;
}

/// End-of-pass sweep: tallies total overflow over the occupied wires and
/// accrues history on every overflowed one. Lives here (not in the layer)
/// so the seeded-bug testhook corrupts tally and accrual TOGETHER — the
/// loop then believes a sharing solution converged, and the feasibility
/// oracle must catch the exclusivity violation downstream.
int tally_overflow_and_accrue(CongestionLayer& layer, double increment) {
  const bool broken = testhooks::negotiate_break_history_update.load(std::memory_order_relaxed);
  int overflow = 0;
  for (const NodeId v : layer.occupied()) {
    if (broken && (v % 2) != 0) continue;  // seeded bug: odd-id wires forgotten
    const int over = layer.occupancy(v) - layer.capacity();
    if (over <= 0) continue;
    overflow += over;
    layer.accrue_history(v, increment);
  }
  return overflow;
}

}  // namespace

RoutingResult route_circuit_negotiated(Device& device, const Circuit& circuit,
                                       const RouterOptions& options) {
  FPR_CHECK(!options.decompose_two_pin,
            "negotiated mode routes whole nets only — decompose_two_pin is the paper-mode "
            "baseline and its per-sink commits have no negotiated meaning");
  counters().negotiate_runs.fetch_add(1, std::memory_order_relaxed);
  const std::size_t net_count = circuit.nets.size();

  device.reset();
  Graph& g = device.graph();
  CongestionLayer layer(g, device.block_count());
  WorkBudget budget{options.node_budget};
  NegotiateContext ctx{device, circuit, options, layer, budget};

  RoutingResult result;
  std::vector<std::size_t> order(net_count);
  std::iota(order.begin(), order.end(), 0);

  // Wave mode engages under the same read-confinement gate as paper mode;
  // decompose_two_pin is already excluded above.
  PoolLease lease(options.threads);
  const bool wave_mode = lease.pool().size() > 1 && net_count > 1 && options.node_budget <= 0 &&
                         options.route_options.candidates == CandidateStrategy::kCorridor;
  PartitionTree ptree;
  std::vector<int> net_region;
  if (wave_mode) {
    const TileRect bounds = device_tile_bounds(device);
    ptree = PartitionTree::build(bounds);
    net_region = schedule_regions(circuit, options, ptree, bounds);
  }

  /// Best non-aborted pass so far, by (overflow, failed count) — restored
  /// when the loop exhausts its pass cap without converging.
  struct Snapshot {
    std::vector<NetRouteResult> nets;
    int overflow = std::numeric_limits<int>::max();
    int failed = std::numeric_limits<int>::max();
    bool valid() const { return overflow != std::numeric_limits<int>::max(); }
  } best;

  PatternStats patterns;
  std::vector<NetRouteResult> pass_nets;
  std::vector<std::size_t> failed;
  double present = options.present_factor;
  const int pass_cap = std::max(1, options.negotiate_passes);
  const int stall_window = options.stall_passes > 0 ? std::max(options.stall_passes, 6) : 0;
  int best_overflow_seen = std::numeric_limits<int>::max();
  int last_overflow = 0;
  int stalled = 0;
  bool converged = false;

  for (int pass = 1; pass <= pass_cap; ++pass) {
    counters().negotiate_passes.fetch_add(1, std::memory_order_relaxed);
    // Rip up everything: occupancy clears (history persists), then the new
    // present factor takes effect on an empty layer.
    layer.begin_pass();
    layer.set_present_factor(present);
    pass_nets.assign(net_count, NetRouteResult{});
    failed.clear();
    result.passes = pass;

    if (wave_mode) {
      route_pass_waves(ctx, order, pass_nets, failed, patterns, lease.pool(), ptree,
                       net_region);
    } else {
      for (std::size_t pos = 0; pos < order.size(); ++pos) {
        if (budget.exhausted()) {
          // Out of budget: everything not yet attempted this pass aborts;
          // the committed prefix stays a consistent partial pass.
          for (std::size_t rest = pos; rest < order.size(); ++rest) {
            pass_nets[order[rest]].status = NetStatus::kAbortedBudget;
            failed.push_back(order[rest]);
          }
          break;
        }
        const std::size_t idx = order[pos];
        route_net_live(ctx, idx, pass_nets[idx], failed, patterns, nullptr);
      }
    }

    last_overflow = tally_overflow_and_accrue(layer, options.history_increment);
    best_overflow_seen = std::min(best_overflow_seen, last_overflow);
    result.overflow_trend.push_back(best_overflow_seen);

    if (budget.exhausted()) break;  // ship the current (partial) pass

    const bool improved =
        last_overflow < best.overflow ||
        (last_overflow == best.overflow && static_cast<int>(failed.size()) < best.failed);
    if (improved) {
      best.nets = pass_nets;
      best.overflow = last_overflow;
      best.failed = static_cast<int>(failed.size());
      stalled = 0;
    } else if (stall_window > 0 && ++stalled >= stall_window) {
      break;  // not converging; ship the best pass seen
    }
    if (last_overflow == 0) {
      converged = true;
      break;
    }
    present = std::min(present * options.present_growth, options.present_factor_max);
  }

  // Choose the shipped solution: the current pass when it converged or the
  // budget expired mid-run (paper mode ships its partial pass the same
  // way), else the best non-aborted pass.
  const bool use_current = converged || budget.exhausted() || !best.valid();
  result.nets = use_current ? std::move(pass_nets) : std::move(best.nets);
  const int believed_overflow = use_current ? last_overflow : best.overflow;

  // Rebuild the layer's occupancy from the chosen records (deterministic
  // ascending order), then — only when the loop BELIEVES overflow remains —
  // vacate over-capacity wires by ripping their nets in descending index
  // order, so the shipped solution satisfies exclusive wire ownership. The
  // belief gate is deliberate: a convergence-accounting bug that
  // undercounts overflow must ship its broken sharing solution for the
  // feasibility oracle to catch, not have this sweep quietly repair it.
  layer.begin_pass();
  for (std::size_t idx = 0; idx < net_count; ++idx) {
    if (!result.nets[idx].routed()) continue;
    for (const NodeId w : wire_nodes_of(device, result.nets[idx].edges)) layer.add_occupant(w);
  }
  if (believed_overflow > 0) {
    for (std::size_t idx = net_count; idx-- > 0;) {
      NetRouteResult& record = result.nets[idx];
      if (!record.routed() || record.edges.empty()) continue;
      const std::vector<NodeId> wires = wire_nodes_of(device, record.edges);
      bool over = false;
      for (const NodeId w : wires) {
        if (layer.occupancy(w) > layer.capacity()) {
          over = true;
          break;
        }
      }
      if (!over) continue;
      for (const NodeId w : wires) layer.remove_occupant(w);
      record = NetRouteResult{};  // status defaults to kFailedCongestion
    }
  }

  // Final device state: base weights (plus faults) with every routed net's
  // wires consumed — the same exclusive-ownership surface paper mode leaves
  // behind. The activity guard makes a shipped sharing violation (seeded
  // bugs) survive to the oracle instead of crashing a double-remove.
  device.reset();
  if (options.record_commits) result.commit_logs.assign(net_count, NetCommitLog{});
  for (std::size_t idx = 0; idx < net_count; ++idx) {
    const NetRouteResult& record = result.nets[idx];
    if (!record.routed()) continue;
    for (const NodeId w : wire_nodes_of(device, record.edges)) {
      if (g.node_active(w)) {
        g.remove_node(w);
        // Wires only, no penalties: the negotiated final state carries none
        // by contract, so this log is the commit's exact undo record.
        if (options.record_commits) result.commit_logs[idx].wires.push_back(w);
      }
    }
  }

  result.failed_nets = 0;
  bool any_aborted = false;
  for (const auto& record : result.nets) {
    if (!record.routed()) ++result.failed_nets;
    any_aborted = any_aborted || record.status == NetStatus::kAbortedBudget;
  }
  result.success = result.failed_nets == 0;
  result.budget_exhausted = any_aborted;
  result.net_order = std::move(order);
  result.work_used = budget.used;
  result.pattern_attempts = patterns.attempts;
  result.pattern_accepts = patterns.accepts;

  if ((device.has_faults() || device.has_fault_events()) && !result.success) {
    router_internal::classify_fault_blocked(device, circuit, result);
  }
  router_internal::accumulate_degradation_stats(device, circuit, options, result);
  router_internal::accumulate_totals(result);
  return result;
}

}  // namespace fpr
