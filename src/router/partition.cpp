#include "router/partition.hpp"

#include <vector>

#include "core/contract.hpp"

namespace fpr {

TileRect device_tile_bounds(const Device& device) {
  const ArchSpec& spec = device.spec();
  // Blocks at (2x+1, 2y+1), vertical channels at even x in [0, 2*cols],
  // horizontal channels at even y in [0, 2*rows] — see Device::node_tile.
  return TileRect{0, 0, 2 * spec.cols, 2 * spec.rows};
}

PartitionTree PartitionTree::build(const TileRect& bounds) { return build(bounds, Options{}); }

PartitionTree PartitionTree::build(const TileRect& bounds, const Options& options) {
  PartitionTree tree;
  if (bounds.empty()) return tree;
  FPR_CHECK(options.leaf_span >= 1, "PartitionTree leaf_span " << options.leaf_span << " < 1");

  tree.nodes_.push_back(Node{bounds, -1, -1, -1, 0});
  // The tree is built breadth-first over a growing vector: every node is
  // visited once, splitting in place when its region is still wide enough.
  for (std::size_t i = 0; i < tree.nodes_.size(); ++i) {
    const TileRect region = tree.nodes_[i].region;
    const int depth = tree.nodes_[i].depth;
    const int span = region.width() > region.height() ? region.width() : region.height();
    if (span <= options.leaf_span || depth >= options.max_depth) continue;

    TileRect low = region;
    TileRect high = region;
    if (region.width() >= region.height()) {
      const int cut = region.x0 + (region.width() - 1) / 2;  // cut after column `cut`
      low.x1 = cut;
      high.x0 = cut + 1;
    } else {
      const int cut = region.y0 + (region.height() - 1) / 2;
      low.y1 = cut;
      high.y0 = cut + 1;
    }
    const int low_id = static_cast<int>(tree.nodes_.size());
    const int high_id = low_id + 1;
    const int self = static_cast<int>(i);
    tree.nodes_[i].low = low_id;
    tree.nodes_[i].high = high_id;
    tree.nodes_.push_back(Node{low, self, -1, -1, depth + 1});
    tree.nodes_.push_back(Node{high, self, -1, -1, depth + 1});
  }
  return tree;
}

std::vector<int> PartitionTree::leaves() const {
  std::vector<int> out;
  for (int id = 0; id < size(); ++id) {
    if (is_leaf(id)) out.push_back(id);
  }
  return out;
}

int PartitionTree::assign(const TileRect& box) const {
  if (nodes_.empty()) return -1;
  FPR_CHECK(node(0).region.contains(box),
            "PartitionTree::assign box [" << box.x0 << "," << box.y0 << " .. " << box.x1 << ","
                                          << box.y1 << "] escapes the root region");
  int id = 0;
  while (!is_leaf(id)) {
    const Node& n = node(id);
    if (node(n.low).region.contains(box)) {
      id = n.low;
    } else if (node(n.high).region.contains(box)) {
      id = n.high;
    } else {
      break;  // box crosses this node's cutline: it lives here
    }
  }
  return id;
}

}  // namespace fpr
