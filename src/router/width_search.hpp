#pragma once

#include <utility>
#include <vector>

#include "router/router.hpp"

namespace fpr {

struct WidthSearchOptions {
  int min_width = 2;
  int max_width = 30;

  /// Worker threads for speculative probing: 0 = the shared pool
  /// (FPR_THREADS / hardware default), 1 = serial, >= 2 = a dedicated pool
  /// of that size. Whatever the value, the result is identical (see the
  /// attempts contract below); threads only change wall-clock time.
  int threads = 0;
};

/// Result of the minimum-channel-width search — the quality measure the
/// paper's circuit experiments report ("for each circuit we find the
/// smallest maximum channel width necessary to completely route the
/// circuit").
struct WidthSearchResult {
  int min_width = -1;  // -1: unroutable within [min_width, max_width]
  RoutingResult at_min_width;
  std::vector<std::pair<int, bool>> attempts;  // (width, success) trace
};

/// Finds the smallest channel width at which the router completes the
/// circuit. Routability is monotone in practice, so the search is binary
/// over [min_width, max_width] after confirming the upper end routes.
/// `base` supplies the architecture family (switch pattern, Fc rule); its
/// own channel_width is ignored.
///
/// **Attempts-ordering contract.** `attempts` records exactly the probes a
/// serial binary search performs, in its order: `max_width` first, then the
/// midpoint sequence `mid = lo + (cur_min - lo) / 2` with `cur_min`
/// shrinking on success and `lo` rising on failure, until `lo == cur_min`.
/// The parallel implementation speculates additional widths concurrently
/// (each probe routes on its own Device, so per-width outcomes are
/// deterministic), but replays the serial decision sequence over the
/// memoized outcomes: `min_width`, `at_min_width`, and `attempts` are
/// bit-identical in content to the serial search for every thread count.
/// Speculative probes that the serial search would not have made are NOT
/// recorded.
///
/// Degenerate ranges are guarded: `min_width` is clamped up to 1, and an
/// empty range (`min_width > max_width` after clamping, or
/// `max_width < 1`) returns `{min_width = -1}` with no attempts instead of
/// probing nonsensical widths.
WidthSearchResult find_min_channel_width(const ArchSpec& base, const Circuit& circuit,
                                         const RouterOptions& router_options,
                                         const WidthSearchOptions& search_options = {});

}  // namespace fpr
