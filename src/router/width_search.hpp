#pragma once

#include <optional>
#include <string_view>
#include <vector>

#include "router/router.hpp"

namespace fpr {

struct WidthSearchOptions {
  int min_width = 2;
  int max_width = 30;

  /// Worker threads for speculative probing: 0 = the shared pool
  /// (FPR_THREADS / hardware default), 1 = serial, >= 2 = a dedicated pool
  /// of that size. Whatever the value, the result is identical (see the
  /// attempts contract below); threads only change wall-clock time.
  int threads = 0;

  /// Deterministic node-expansion budget granted to EACH width probe
  /// (overrides RouterOptions::node_budget when > 0; 0 keeps it). Per-probe
  /// rather than shared across the search on purpose: a shared pot would
  /// make one width's outcome depend on which speculative probes ran before
  /// it, destroying the serial-replay contract. Fresh budgets keep every
  /// per-width outcome a pure function of the width.
  long long node_budget_per_probe = 0;

  /// Fault spec to install on every probe device (the same defect
  /// distribution re-drawn at each width) — the yield-curve experiments
  /// ask "what width does this DEFECTIVE part need". nullopt = pristine.
  std::optional<FaultSpec> faults;
};

/// Why the search ended — distinguishes three conditions that used to
/// collapse into min_width == -1 (silent failure): nothing was probed at
/// all, the circuit genuinely does not route at max_width, or the probe at
/// max_width ran out of work budget before deciding.
enum class WidthSearchStatus {
  kEmptyRange,        // degenerate [min,max]: no widths probed
  kFound,             // min_width holds the answer
  kUnroutable,        // failed at max_width with budget to spare
  kBudgetExhausted,   // the max_width probe aborted on budget: unknown
};

/// Printable name ("found", "unroutable", "empty-range", "budget").
std::string_view width_search_status_name(WidthSearchStatus status);

/// One probe of the serial binary-search trace. A budget-aborted probe
/// counts as a failure for the search's decisions (the safe direction:
/// widths are only ever overestimated) but is recorded distinctly so yield
/// analyses can tell "defect-unroutable" from "ran out of budget".
struct WidthProbe {
  int width = 0;
  bool success = false;
  bool budget_aborted = false;

  friend bool operator==(const WidthProbe&, const WidthProbe&) = default;
};

/// Result of the minimum-channel-width search — the quality measure the
/// paper's circuit experiments report ("for each circuit we find the
/// smallest maximum channel width necessary to completely route the
/// circuit").
struct WidthSearchResult {
  WidthSearchStatus status = WidthSearchStatus::kEmptyRange;
  int min_width = -1;  // -1 unless status == kFound
  RoutingResult at_min_width;
  std::vector<WidthProbe> attempts;  // serial-order probe trace

  /// Probes in `attempts` that were budget-undecided: the router aborted on
  /// its per-probe work budget before reaching an answer, and the search
  /// treated the width as failing (the safe direction — widths are only
  /// ever overestimated). Nonzero alongside status == kFound means
  /// min_width is an upper bound, not a certainty: a narrower width below
  /// it may have been ruled out by budget rather than by congestion.
  /// Derived from `attempts`, so it inherits the bit-identical
  /// serial/parallel contract below.
  int undecided_probes = 0;
};

/// Finds the smallest channel width at which the router completes the
/// circuit. Routability is monotone in practice, so the search is binary
/// over [min_width, max_width] after confirming the upper end routes.
/// `base` supplies the architecture family (switch pattern, Fc rule); its
/// own channel_width is ignored.
///
/// **Attempts-ordering contract.** `attempts` records exactly the probes a
/// serial binary search performs, in its order: `max_width` first, then the
/// midpoint sequence `mid = lo + (cur_min - lo) / 2` with `cur_min`
/// shrinking on success and `lo` rising on failure, until `lo == cur_min`.
/// The parallel implementation speculates additional widths concurrently
/// (each probe routes on its own Device, so per-width outcomes are
/// deterministic), but replays the serial decision sequence over the
/// memoized outcomes: `min_width`, `at_min_width`, and `attempts` are
/// bit-identical in content to the serial search for every thread count.
/// Speculative probes that the serial search would not have made are NOT
/// recorded.
///
/// Degenerate ranges are guarded: `min_width` is clamped up to 1, and an
/// empty range (`min_width > max_width` after clamping, or
/// `max_width < 1`) returns `{status = kEmptyRange, min_width = -1}` with
/// no attempts instead of probing nonsensical widths.
///
/// **Graph-build cost across probes.** Each probe constructs a fresh
/// Device, but the tile-template cache (fpga/tile_template.hpp) is keyed
/// by (family, width), so a width probed once — serially or by a
/// speculative worker — compiles its template once and every later Device
/// of that width stamps from the cached template in O(V + E) with no
/// learning pass. Repeated width searches over the same family (the yield
/// sweeps) converge to pure stamping, which is why probe cost is dominated
/// by routing, not graph construction, even at large array sizes.
WidthSearchResult find_min_channel_width(const ArchSpec& base, const Circuit& circuit,
                                         const RouterOptions& router_options,
                                         const WidthSearchOptions& search_options = {});

}  // namespace fpr
