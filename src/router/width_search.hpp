#pragma once

#include <utility>
#include <vector>

#include "router/router.hpp"

namespace fpr {

struct WidthSearchOptions {
  int min_width = 2;
  int max_width = 30;
};

/// Result of the minimum-channel-width search — the quality measure the
/// paper's circuit experiments report ("for each circuit we find the
/// smallest maximum channel width necessary to completely route the
/// circuit").
struct WidthSearchResult {
  int min_width = -1;  // -1: unroutable within [min_width, max_width]
  RoutingResult at_min_width;
  std::vector<std::pair<int, bool>> attempts;  // (width, success) trace
};

/// Finds the smallest channel width at which the router completes the
/// circuit. Routability is monotone in practice, so the search is binary
/// over [min_width, max_width] after confirming the upper end routes.
/// `base` supplies the architecture family (switch pattern, Fc rule); its
/// own channel_width is ignored.
WidthSearchResult find_min_channel_width(const ArchSpec& base, const Circuit& circuit,
                                         const RouterOptions& router_options,
                                         const WidthSearchOptions& search_options = {});

}  // namespace fpr
