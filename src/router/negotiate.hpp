#pragma once

#include <atomic>

#include "fpga/device.hpp"
#include "netlist/netlist.hpp"
#include "router/router.hpp"

namespace fpr {

namespace testhooks {

/// When set, the end-of-pass overflow sweep in route_circuit_negotiated
/// skips odd-id wires from BOTH the overflow tally and the history accrual
/// — the seeded "history update forgets wires" bug the negotiated-mode
/// mutation-smoke test plants. The convergence loop then believes a pass
/// with shared odd-id wires has converged, ships a solution violating wire
/// exclusivity, and the feasibility oracle must catch it. Never set outside
/// tests.
extern std::atomic<bool> negotiate_break_history_update;

}  // namespace testhooks

/// Negotiated-congestion routing loop (DESIGN.md §13): the RouterMode::
/// kNegotiated body route_circuit dispatches to. Iterative rip-up-and-
/// reroute over a CongestionLayer — every pass rips all nets, re-routes
/// them in fixed identity order against present-overflow + history pricing,
/// accrues history on overflowed wires, and grows the present factor —
/// until no wire is over capacity (converged), the pass cap expires (best
/// pass wins, then over-capacity wires are vacated deterministically), or
/// the work budget runs out. Two-pin nets try L/Z pattern probes
/// (router/patterns.hpp) before the scoped engine. The returned solution
/// and final device state satisfy the same exclusive-wire-ownership
/// contract as paper mode; the outcome is bit-identical at every
/// RouterOptions::threads value (the PR 6 wave scheduler speculates, the
/// serial replay decides).
RoutingResult route_circuit_negotiated(Device& device, const Circuit& circuit,
                                       const RouterOptions& options);

}  // namespace fpr
