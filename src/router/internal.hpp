#pragma once

#include "fpga/device.hpp"
#include "netlist/netlist.hpp"
#include "router/router.hpp"

/// Post-hoc diagnosis helpers shared by the paper-mode router (router.cpp)
/// and the negotiated-congestion loop (negotiate.cpp). Internal to
/// src/router: both modes must classify failures and recount degradation
/// statistics identically, so the logic lives once, here, instead of
/// drifting apart in two copies.
namespace fpr::router_internal {

/// Reclassifies the failed-by-congestion nets of `result` against an empty
/// device with the same faults installed: a terminal unreachable there is
/// unreachable at ANY congestion level, so the net is defect-blocked, not
/// capacity-starved. Runs unbudgeted — it is post-hoc diagnosis, not
/// routing work — and only when faults are present (on a pristine device
/// every block is reachable by construction, making the probe a no-op).
void classify_fault_blocked(const Device& device, const Circuit& circuit,
                            RoutingResult& result);

/// Degradation bookkeeping over the final per-net statuses: status counts,
/// and the extra wirelength fault-displaced nets pay versus their solo
/// fault-free routes.
void accumulate_degradation_stats(const Device& device, const Circuit& circuit,
                                  const RouterOptions& options, RoutingResult& result);

/// Sums the per-net metrics of routed nets into the result's total_*
/// aggregates (both modes finish with exactly this fold).
void accumulate_totals(RoutingResult& result);

/// Routes ONE net on the live device exactly the way a serial paper-mode
/// pass would at that position: whole-net attempt (or the decomposed
/// baseline), the fault-retry ladder when `fault_retries > 0`, post-hoc
/// measurement, and the commit (wire consumption + congestion penalties).
/// `record` receives the outcome; when `commit_logs` is non-null it must be
/// indexed like circuit.nets and entry `idx` receives the commit's undo
/// record. This is the re-route primitive of the incremental repair engine
/// (repair.cpp): cone nets re-route through the same code path a full pass
/// uses, so repaired nets are bit-identical to what a fresh pass would
/// produce under the same device state.
void route_single_net(Device& device, const Circuit& circuit, const RouterOptions& options,
                      WorkBudget& budget, int fault_retries,
                      std::vector<NetCommitLog>* commit_logs, std::size_t idx,
                      NetRouteResult& record);

}  // namespace fpr::router_internal
