#pragma once

#include "fpga/device.hpp"
#include "netlist/netlist.hpp"
#include "router/router.hpp"

/// Post-hoc diagnosis helpers shared by the paper-mode router (router.cpp)
/// and the negotiated-congestion loop (negotiate.cpp). Internal to
/// src/router: both modes must classify failures and recount degradation
/// statistics identically, so the logic lives once, here, instead of
/// drifting apart in two copies.
namespace fpr::router_internal {

/// Reclassifies the failed-by-congestion nets of `result` against an empty
/// device with the same faults installed: a terminal unreachable there is
/// unreachable at ANY congestion level, so the net is defect-blocked, not
/// capacity-starved. Runs unbudgeted — it is post-hoc diagnosis, not
/// routing work — and only when faults are present (on a pristine device
/// every block is reachable by construction, making the probe a no-op).
void classify_fault_blocked(const Device& device, const Circuit& circuit,
                            RoutingResult& result);

/// Degradation bookkeeping over the final per-net statuses: status counts,
/// and the extra wirelength fault-displaced nets pay versus their solo
/// fault-free routes.
void accumulate_degradation_stats(const Device& device, const Circuit& circuit,
                                  const RouterOptions& options, RoutingResult& result);

/// Sums the per-net metrics of routed nets into the result's total_*
/// aggregates (both modes finish with exactly this fold).
void accumulate_totals(RoutingResult& result);

}  // namespace fpr::router_internal
