#include "router/router.hpp"

#include <algorithm>
#include <memory>
#include <numeric>
#include <utility>

#include "core/parallel.hpp"
#include "graph/dijkstra.hpp"
#include "router/internal.hpp"
#include "router/negotiate.hpp"
#include "router/partition.hpp"

namespace fpr {

std::string_view router_mode_name(RouterMode mode) {
  switch (mode) {
    case RouterMode::kPaper: return "paper";
    case RouterMode::kNegotiated: return "negotiated";
  }
  return "?";
}

std::string_view net_status_name(NetStatus status) {
  switch (status) {
    case NetStatus::kRouted: return "routed";
    case NetStatus::kFailedCongestion: return "congestion";
    case NetStatus::kBlockedByFault: return "fault";
    case NetStatus::kAbortedBudget: return "budget";
  }
  return "?";
}

namespace {

/// Undo record for commit_net: every wire node it consumed and every edge
/// it charged the congestion penalty to (one entry per application, so an
/// edge penalized through several siblings appears several times). The
/// same shape the public API records per net when
/// RouterOptions::record_commits is on.
using CommitLog = NetCommitLog;

/// Commits a routed net: removes its wire nodes from the graph (electrical
/// disjointness) and charges the congestion penalty to the edges of the
/// remaining free wires in every channel tile the net touched. When `log`
/// is given, records enough to invert the commit exactly.
int commit_net(Device& device, const std::vector<EdgeId>& edges, double congestion_penalty,
               CommitLog* log = nullptr) {
  Graph& g = device.graph();
  std::vector<NodeId> wires;
  for (const EdgeId e : edges) {
    for (const NodeId v : {g.edge(e).u, g.edge(e).v}) {
      if (device.is_wire(v) && g.node_active(v)) {
        wires.push_back(v);
        g.remove_node(v);
      }
    }
  }
  if (congestion_penalty > 0) {
    for (const NodeId w : wires) {
      device.for_each_tile_sibling(w, [&](NodeId sibling) {
        if (!g.node_active(sibling)) return;
        for (const EdgeId e : g.incident_edges(sibling)) {
          if (g.edge_active(e)) {
            g.add_edge_weight(e, congestion_penalty);
            if (log) log->penalized.push_back(e);
          }
        }
      });
    }
  }
  if (log) log->wires.insert(log->wires.end(), wires.begin(), wires.end());
  return static_cast<int>(wires.size());
}

/// Exact inverse of the commits recorded in `log`: subtracts every penalty
/// delta and reactivates every consumed wire node, leaving the device as if
/// the net had never been attempted.
void rollback_commits(Device& device, const CommitLog& log, double congestion_penalty) {
  Graph& g = device.graph();
  for (auto it = log.penalized.rbegin(); it != log.penalized.rend(); ++it) {
    g.add_edge_weight(*it, -congestion_penalty);
  }
  for (auto it = log.wires.rbegin(); it != log.wires.rend(); ++it) {
    g.restore_node(*it);
  }
}

/// Scoped congestion relief for fault retries: remaps every edge weight
/// w -> 1 + (w - 1) * scale on construction and undoes the remap exactly on
/// destruction. Penalties charged while the guard is live (the decomposed
/// baseline commits per sink mid-attempt) are preserved: the destructor
/// restores original + (current - relaxed), i.e. only the relief delta is
/// removed. All arithmetic is over dyadic rationals (weights, the 0.25
/// penalty, backoff powers of 0.5), so the restore is bit-exact.
///
/// Only edges whose weight differs from the base 1.0 are snapshotted: for a
/// base-weight edge relaxed == original == current-delta, so both the remap
/// and the restore are no-ops, and the congested fraction of a device is
/// tiny — the guard costs O(congested edges), not O(E), per retry (one
/// full-array scan aside, with no per-edge revision bumps or restores).
class CongestionRelief {
 public:
  CongestionRelief(Graph& g, double scale) : g_(g) {
    // Engagement counter: relief assumes the paper mode's exclusive wire
    // ownership (weights encode the 0.25-per-commit penalties it relaxes).
    // Negotiated-mode weights encode present/history pricing instead, so
    // relief must never run there — negotiate_paper_boundary_test pins
    // this counter at zero across negotiated runs.
    counters().congestion_reliefs.fetch_add(1, std::memory_order_relaxed);
    const EdgeId count = g.edge_count();
    for (EdgeId e = 0; e < count; ++e) {
      const Weight w = g.edge_weight(e);
      if (w == 1.0) continue;
      const Weight relaxed = 1.0 + (w - 1.0) * scale;
      touched_.push_back({e, w, relaxed});
      if (relaxed != w) g_.set_edge_weight(e, relaxed);
    }
  }

  CongestionRelief(const CongestionRelief&) = delete;
  CongestionRelief& operator=(const CongestionRelief&) = delete;

  ~CongestionRelief() {
    for (const Entry& t : touched_) {
      const Weight target = t.original + (g_.edge_weight(t.edge) - t.relaxed);
      if (g_.edge_weight(t.edge) != target) g_.set_edge_weight(t.edge, target);
    }
  }

 private:
  struct Entry {
    EdgeId edge;
    Weight original;
    Weight relaxed;
  };

  Graph& g_;
  std::vector<Entry> touched_;
};

/// Routes one net as a whole tree with the configured algorithm
/// (the critical-net algorithm when the net is flagged critical).
RoutingTree route_whole_net(const Graph& g, const Net& net, bool critical,
                            const RouterOptions& options, PathOracle& oracle) {
  const Algorithm algo = critical ? options.critical_algorithm : options.algorithm;
  return route(g, net, algo, oracle, options.route_options);
}

/// Baseline: each sink is an independent two-pin connection; later
/// connections may not reuse earlier ones' wires (they are consumed by the
/// caller between... no — within the *net* the connections stay disjoint
/// too, which is exactly the waste the paper's Steiner routing removes).
struct TwoPinOutcome {
  bool routed = false;
  bool budget_aborted = false;
  std::vector<EdgeId> edges;
  Weight wirelength = 0;
  Weight max_pathlength = 0;
  int physical_max_path = 0;
  int wire_nodes_used = 0;
};

TwoPinOutcome route_two_pin_decomposed(Device& device, const Net& net,
                                       double congestion_penalty, WorkBudget* budget,
                                       CommitLog* out_log = nullptr) {
  Graph& g = device.graph();
  TwoPinOutcome out;
  std::vector<EdgeId> all_edges;
  CommitLog log;
  // One tree object across all sinks: each commit mutates the graph, so the
  // search must rerun per sink, but the reuse overload keeps the per-sink
  // reruns allocation-free (the tree's vectors are recycled).
  ShortestPathTree spt;
  for (const NodeId sink : net.sinks) {
    dijkstra(g, net.source, spt, budget);
    if (!spt.reached(sink)) {
      // A later sink failed after earlier sinks already consumed wires and
      // charged congestion: the whole net fails, so give those resources
      // back — otherwise the dead net starves every net after it for the
      // rest of the pass.
      rollback_commits(device, log, congestion_penalty);
      TwoPinOutcome failed;
      failed.budget_aborted = spt.budget_aborted;
      return failed;  // routed == false, zero wires held
    }
    const auto path = spt.path_edges_to(sink);
    out.max_pathlength = std::max(out.max_pathlength, spt.distance(sink));
    out.physical_max_path = std::max(out.physical_max_path, static_cast<int>(path.size()));
    out.wirelength += spt.distance(sink);
    all_edges.insert(all_edges.end(), path.begin(), path.end());
    // Consume immediately so the next connection cannot share wires.
    out.wire_nodes_used += commit_net(device, path, congestion_penalty, &log);
  }
  out.routed = true;
  out.edges = std::move(all_edges);
  if (out_log != nullptr) *out_log = std::move(log);
  return out;
}

}  // namespace

// Shared post-hoc diagnosis (router/internal.hpp): identical logic serves
// the paper-mode loop below and the negotiated loop in negotiate.cpp.
namespace router_internal {

void classify_fault_blocked(const Device& device, const Circuit& circuit,
                            RoutingResult& result) {
  std::unique_ptr<Device> probe;
  PathOracle* oracle = nullptr;
  std::unique_ptr<PathOracle> oracle_storage;
  for (std::size_t idx = 0; idx < result.nets.size(); ++idx) {
    NetRouteResult& record = result.nets[idx];
    if (record.status != NetStatus::kFailedCongestion) continue;
    if (probe == nullptr) {
      probe = std::make_unique<Device>(device.spec());
      // The probe mirrors the device's defects only: installed fault set
      // plus the live-event overlay (either may be absent on its own).
      if (device.faults() != nullptr) probe->install_faults(device.faults()->spec());
      if (device.has_fault_events()) probe->apply_fault_event(device.fault_event_overlay());
      oracle_storage = std::make_unique<PathOracle>(probe->graph());
      oracle = oracle_storage.get();
    }
    const Net net = to_graph_net(*probe, circuit.nets[idx]);
    const ShortestPathTree& spt = oracle->from(net.source);
    for (const NodeId sink : net.sinks) {
      if (!spt.reached(sink)) {
        record.status = NetStatus::kBlockedByFault;
        record.blocked_sink = sink;
        break;
      }
    }
  }
}

namespace {

/// Physical wirelength of `net` routed alone on a pristine fault-free
/// device — the fault-free baseline the detour-overhead statistic compares
/// against. Returns -1 when even the solo route fails (pathological widths).
int solo_fault_free_wirelength(Device& pristine, const CircuitNet& circuit_net,
                               bool critical, const RouterOptions& options) {
  pristine.reset();
  const Net net = to_graph_net(pristine, circuit_net);
  if (net.sinks.empty()) return 0;
  Graph& g = pristine.graph();
  PathOracle oracle(g);
  const std::vector<NodeId> terminals = net.terminals();
  const Algorithm algo = critical ? options.critical_algorithm : options.algorithm;
  if (algorithm_supports_scoped_paths(algo)) oracle.set_scope(terminals);
  const RoutingTree tree = route(g, net, algo, oracle, options.route_options);
  if (!tree.spans(terminals)) return -1;
  return static_cast<int>(tree.edges().size());
}

}  // namespace

void accumulate_degradation_stats(const Device& device, const Circuit& circuit,
                                  const RouterOptions& options, RoutingResult& result) {
  std::unique_ptr<Device> pristine;  // built lazily: most runs have no detours
  for (std::size_t idx = 0; idx < result.nets.size(); ++idx) {
    const NetRouteResult& record = result.nets[idx];
    switch (record.status) {
      case NetStatus::kBlockedByFault: ++result.nets_blocked_by_fault; break;
      case NetStatus::kAbortedBudget: ++result.nets_aborted_budget; break;
      default: break;
    }
    if (!record.routed() || record.retries == 0) continue;
    ++result.nets_rerouted_around_faults;
    if (pristine == nullptr) pristine = std::make_unique<Device>(device.spec());
    const int solo = solo_fault_free_wirelength(*pristine, circuit.nets[idx],
                                                circuit.nets[idx].critical, options);
    if (solo >= 0 && record.physical_wirelength > solo) {
      result.detour_wirelength_overhead += record.physical_wirelength - solo;
    }
  }
}

void accumulate_totals(RoutingResult& result) {
  for (const auto& record : result.nets) {
    if (!record.routed()) continue;
    result.total_wirelength += record.wirelength;
    result.total_wire_nodes += record.wire_nodes_used;
    result.total_max_pathlength += record.max_pathlength;
    result.total_optimal_max_pathlength += record.optimal_max_pathlength;
    result.total_physical_wirelength += record.physical_wirelength;
    result.total_physical_max_path += record.physical_max_path;
  }
}

}  // namespace router_internal

namespace {

// ---------------------------------------------------------------------------
// Net-parallel wave scheduling (DESIGN.md §11).
//
// The per-pass net loop speculates partition-independent nets concurrently
// against the wave-start device state (strictly read-only), then replays
// them in serial order: a speculation is accepted — committed exactly as the
// serial router would have — iff nothing committed since the wave started
// intersects the rectangle of device state the speculative search actually
// read; otherwise the net is recomputed on the live device. Acceptance
// implies bit-identity (a serial route at replay time would have read
// exactly the same state, hence computed exactly the same tree), so the
// partition tree is purely a scheduler: it decides what to TRY in parallel,
// never what the answer is.
// ---------------------------------------------------------------------------

/// Everything the per-net routine needs; one instance per route_circuit.
struct NetContext {
  Device& device;
  const Circuit& circuit;
  const RouterOptions& options;
  WorkBudget& budget;
  int fault_retries;
  /// When non-null (record_commits), indexed like circuit.nets: each
  /// committed net writes its undo record to (*commit_logs)[idx].
  std::vector<NetCommitLog>* commit_logs = nullptr;
};

/// Folds one commit's writes into `box`: the consumed wire nodes and both
/// endpoints of every penalized edge — exactly the graph state (activity
/// and weights) the commit changed.
void include_commit_box(const Device& device, const Graph& g, const CommitLog& log,
                        TileRect& box) {
  for (const NodeId w : log.wires) {
    const Device::TilePos t = device.node_tile(w);
    box.include(t.x, t.y);
  }
  for (const EdgeId e : log.penalized) {
    for (const NodeId v : {g.edge(e).u, g.edge(e).v}) {
      const Device::TilePos t = device.node_tile(v);
      box.include(t.x, t.y);
    }
  }
}

/// Routes net `idx` on the live device — the serial per-net routine: one
/// whole-net attempt (or the decomposed baseline), the fault-retry ladder,
/// measurement, and the commit. On failure appends idx to `failed`. When
/// `write_box` is non-null, the commit's writes are folded into it (wave
/// replay dirty-tracking).
void route_net_live(NetContext& ctx, std::size_t idx, NetRouteResult& record,
                    std::vector<std::size_t>& failed, TileRect* write_box) {
  Device& device = ctx.device;
  const RouterOptions& options = ctx.options;
  WorkBudget& budget = ctx.budget;
  const Net net = to_graph_net(device, ctx.circuit.nets[idx]);
  if (net.sinks.empty()) {  // all pins on one block: trivially routed
    record.status = NetStatus::kRouted;
    return;
  }
  Graph& g = device.graph();

  if (options.decompose_two_pin) {
    // Optimal pathlength bound measured before any of the net's own
    // connections consume resources.
    PathOracle oracle(g);
    oracle.set_budget(&budget);
    const auto& spt = oracle.from(net.source);
    Weight opt = 0;
    bool reachable = true;
    for (const NodeId s : net.sinks) {
      if (!spt.reached(s)) reachable = false;
      opt = std::max(opt, spt.distance(s));
    }
    if (!reachable) {
      record.status =
          budget.exhausted() ? NetStatus::kAbortedBudget : NetStatus::kFailedCongestion;
      failed.push_back(idx);
      return;
    }
    CommitLog* log =
        ctx.commit_logs != nullptr ? &(*ctx.commit_logs)[idx] : nullptr;
    auto out = route_two_pin_decomposed(device, net, options.congestion_penalty, &budget, log);
    double relief_scale = 1.0;
    while (!out.routed && !out.budget_aborted && record.retries < ctx.fault_retries) {
      ++record.retries;
      relief_scale *= options.fault_relief_backoff;
      CongestionRelief relief(g, relief_scale);
      out = route_two_pin_decomposed(device, net, options.congestion_penalty, &budget, log);
    }
    if (!out.routed) {
      record.status =
          out.budget_aborted ? NetStatus::kAbortedBudget : NetStatus::kFailedCongestion;
      failed.push_back(idx);
      return;
    }
    record.status = NetStatus::kRouted;
    record.edges = std::move(out.edges);
    record.wirelength = out.wirelength;
    record.max_pathlength = out.max_pathlength;
    record.optimal_max_pathlength = opt;
    record.physical_wirelength = static_cast<int>(record.edges.size());
    record.physical_max_path = out.physical_max_path;
    record.wire_nodes_used = out.wire_nodes_used;
    return;
  }

  PathOracle oracle(g);
  oracle.set_budget(&budget);
  const std::vector<NodeId> terminals = net.terminals();
  const bool critical = ctx.circuit.nets[idx].critical;
  const Algorithm algo = critical ? options.critical_algorithm : options.algorithm;
  // Radius-bounded shortest paths: local nets only pay for their
  // neighborhood of the device graph, not the whole chip.
  if (algorithm_supports_scoped_paths(algo)) {
    oracle.set_scope(terminals);
  }
  RoutingTree tree = route_whole_net(g, net, critical, options, oracle);

  // Fault-retry ladder: a defect can sever exactly the corridor the
  // congestion weights and candidate cap funnel this net into, so each
  // retry widens the search — unscoped oracle, unlimited candidates,
  // then the DJKA arborescence (pure shortest paths reach anything
  // reachable) — under geometrically relaxed congestion.
  double relief_scale = 1.0;
  while (!tree.spans(terminals) && !budget.exhausted() &&
         record.retries < ctx.fault_retries) {
    ++record.retries;
    relief_scale *= options.fault_relief_backoff;
    CongestionRelief relief(g, relief_scale);
    PathOracle retry_oracle(g);
    retry_oracle.set_budget(&budget);
    const Algorithm retry_algo = record.retries == 1 ? algo : Algorithm::kDjka;
    const RouteOptions wide{CandidateStrategy::kAllNodes, 0, 0};
    tree = route(g, net, retry_algo, retry_oracle, wide);
  }

  if (!tree.spans(terminals)) {
    record.status =
        budget.exhausted() ? NetStatus::kAbortedBudget : NetStatus::kFailedCongestion;
    failed.push_back(idx);
    return;
  }
  // Measure on the true (unrelieved) weights, and never through a tree the
  // work budget may have truncated: a budget-aborted Dijkstra run stays
  // cached as a partial tree (path_oracle.hpp), so re-using the per-net
  // oracle here can record a tentative or even infinite "optimal" bound
  // for a net that ROUTED. Measurement is post-hoc diagnosis, not routing
  // work, so it must neither charge the budget nor trust budget-shaped
  // caches. The per-net oracle is safe only for an unbudgeted first
  // attempt (its cached source trees are then complete for the terminals);
  // a retried or budget-limited net is measured the way
  // classify_fault_blocked's probes run: fresh oracle, no scope, no budget.
  oracle.set_budget(nullptr);
  TreeMetrics metrics;
  if (record.retries == 0 && budget.unlimited()) {
    metrics = measure(g, net, tree, oracle);
  } else {
    PathOracle measure_oracle(g);
    metrics = measure(g, net, tree, measure_oracle);
  }
  record.status = NetStatus::kRouted;
  record.edges = tree.edges();
  record.wirelength = metrics.wirelength;
  record.max_pathlength = metrics.max_pathlength;
  record.optimal_max_pathlength = metrics.optimal_max_pathlength;
  record.physical_wirelength = static_cast<int>(tree.edges().size());
  record.physical_max_path = tree.max_path_edge_count(net.source, net.sinks);
  CommitLog local_log;
  CommitLog* log = ctx.commit_logs != nullptr ? &(*ctx.commit_logs)[idx] : nullptr;
  if (log == nullptr && write_box != nullptr) log = &local_log;
  record.wire_nodes_used = commit_net(device, tree.edges(), options.congestion_penalty, log);
  if (write_box != nullptr) include_commit_box(device, g, *log, *write_box);
}

/// Collapses every Dijkstra run of a speculative route into one rectangle
/// over the device's unified tile grid.
class BoxFootprint final : public SearchFootprintObserver {
 public:
  explicit BoxFootprint(const Device& device) : device_(&device) {}

  void on_search(std::span<const NodeId> labeled) override {
    for (const NodeId v : labeled) {
      const Device::TilePos t = device_->node_tile(v);
      box_.include(t.x, t.y);
    }
  }

  const TileRect& box() const { return box_; }

 private:
  const Device* device_;
  TileRect box_;
};

/// Every read a corridor-candidate whole-net construction performs sits
/// within Chebyshev distance 2 (in unified tile units) of a node some
/// Dijkstra run labeled: relaxation reads touch labeled endpoints, tree
/// costs read edges between labeled nodes, and candidate enumeration reads
/// the 1-hop neighborhood of oracle path nodes — one edge away, and a
/// device edge spans at most 2 tile units (Device::node_tile). Padding the
/// labeled bounding box by 2 therefore covers the whole read set.
constexpr int kReadHalo = 2;

/// One speculative net route: where it sits in the pass order, what routing
/// it produced against the wave-start device state, and the region of the
/// device the search observed.
struct Speculation {
  std::size_t pos = 0;  // position in the pass order
  std::size_t idx = 0;  // net index
  bool spans = false;   // the speculative tree spans its terminals
  long long work = 0;   // node expansions the attempt performed
  TileRect read_box;    // labeled nodes + halo: all state the attempt read
  std::vector<EdgeId> edges;
  TreeMetrics metrics;
  int physical_max_path = 0;
};

/// Read-only speculative mirror of route_net_live's first whole-net attempt
/// (the gate guarantees: non-trivial net, scoped algorithm, corridor
/// candidates, no shared budget). Runs on pool workers against the
/// wave-start device state; its only outputs are `spec` and this thread's
/// footprint.
void speculate_net(const Device& device, const Circuit& circuit, const RouterOptions& options,
                   Speculation& spec) {
  const Graph& g = device.graph();
  BoxFootprint footprint(device);
  ScopedSearchFootprint guard(&footprint);
  const Net net = to_graph_net(device, circuit.nets[spec.idx]);
  WorkBudget local;  // unlimited: tracks expansions for work accounting
  PathOracle oracle(g);
  oracle.set_budget(&local);
  const std::vector<NodeId> terminals = net.terminals();
  const bool critical = circuit.nets[spec.idx].critical;
  oracle.set_scope(terminals);
  RoutingTree tree = route_whole_net(g, net, critical, options, oracle);
  spec.spans = tree.spans(terminals);
  if (spec.spans) {
    // Mirror route_net_live: measurement is unbudgeted there, so it must
    // not count toward spec.work here either, or an accepted speculation
    // would charge the shared budget more than the serial route it replays.
    oracle.set_budget(nullptr);
    spec.metrics = measure(g, net, tree, oracle);
    spec.edges = tree.edges();
    spec.physical_max_path = tree.max_path_edge_count(net.source, net.sinks);
  }
  spec.work = local.used;
  spec.read_box = footprint.box().expanded(kReadHalo);
}

/// Replay-time acceptance test. Returns true when the speculation was
/// accepted and fully applied (record filled, committed, write box pushed);
/// false when the net must be recomputed on the live device.
bool accept_speculation(NetContext& ctx, Speculation& spec, NetRouteResult& record,
                        std::vector<std::size_t>& failed,
                        std::vector<TileRect>& wave_writes) {
  // Accepting requires that a serial route at this position would have read
  // exactly the state the speculation read: everything committed since wave
  // start must miss the speculative read footprint.
  for (const TileRect& w : wave_writes) {
    if (spec.read_box.intersects(w)) return false;
  }
  // A clean failed attempt is final only when no fault-retry ladder would
  // follow it — the ladder relaxes GLOBAL edge weights, so it always runs
  // live.
  if (!spec.spans && ctx.fault_retries > 0) return false;
  counters().nets_spec_accepted.fetch_add(1, std::memory_order_relaxed);
  ctx.budget.used += spec.work;  // the exact expansions a serial route costs
  if (!spec.spans) {
    record.status = NetStatus::kFailedCongestion;
    failed.push_back(spec.idx);
    return true;
  }
  record.status = NetStatus::kRouted;
  record.edges = std::move(spec.edges);
  record.wirelength = spec.metrics.wirelength;
  record.max_pathlength = spec.metrics.max_pathlength;
  record.optimal_max_pathlength = spec.metrics.optimal_max_pathlength;
  record.physical_wirelength = static_cast<int>(record.edges.size());
  record.physical_max_path = spec.physical_max_path;
  CommitLog local_log;
  CommitLog* log =
      ctx.commit_logs != nullptr ? &(*ctx.commit_logs)[spec.idx] : &local_log;
  record.wire_nodes_used =
      commit_net(ctx.device, record.edges, ctx.options.congestion_penalty, log);
  TileRect write_box;
  include_commit_box(ctx.device, ctx.device.graph(), *log, write_box);
  wave_writes.push_back(write_box);
  return true;
}

// Wave shaping: how many nets one wave may speculate and how far past the
// cursor the scheduler may look for independent ones. Fixed constants —
// deliberately NOT derived from the thread count, so the wave decomposition
// (and with it every counter a test could observe) is the same whether the
// pool has 2 workers or 32.
constexpr std::size_t kWaveNets = 16;
constexpr std::size_t kWaveScan = 64;

/// One full routing pass in wave mode. Equivalent to the serial loop by the
/// acceptance argument above; nets the scheduler skips (trivial, unscoped
/// algorithm, conflicting region) simply route serially at their position.
void route_pass_waves(NetContext& ctx, const std::vector<std::size_t>& order,
                      RoutingResult& result, std::vector<std::size_t>& failed,
                      ThreadPool& pool, const PartitionTree& ptree,
                      const std::vector<int>& net_region) {
  Device& device = ctx.device;
  std::vector<Speculation> wave;
  std::vector<int> regions;
  std::vector<TileRect> wave_writes;
  std::size_t pos = 0;
  while (pos < order.size()) {
    wave.clear();
    regions.clear();
    const std::size_t scan_end = std::min(order.size(), pos + kWaveScan);
    std::size_t span_end = pos + 1;
    for (std::size_t p = pos; p < scan_end && wave.size() < kWaveNets; ++p) {
      const int region = net_region[order[p]];
      if (region < 0) continue;  // never speculated: routes live at replay
      bool independent = true;
      for (const int r : regions) {
        if (!ptree.independent(region, r)) {
          independent = false;
          break;
        }
      }
      if (!independent) continue;
      regions.push_back(region);
      Speculation spec;
      spec.pos = p;
      spec.idx = order[p];
      wave.push_back(std::move(spec));
      span_end = p + 1;
    }
    if (wave.size() < 2) {
      // No concurrency at this cursor: route one net live and move on.
      route_net_live(ctx, order[pos], result.nets[order[pos]], failed, nullptr);
      ++pos;
      continue;
    }

    counters().parallel_waves.fetch_add(1, std::memory_order_relaxed);
    counters().nets_speculated.fetch_add(wave.size(), std::memory_order_relaxed);
    // Publish the adjacency snapshot once, serially. A tiled graph's
    // speculative searches synthesize adjacency from the template instead,
    // so building (and paying the memory for) a CSR would be pure waste.
    if (!device.graph().tiled()) device.graph().csr();
    pool.parallel_for(wave.size(), [&](std::size_t i) {
      speculate_net(device, ctx.circuit, ctx.options, wave[i]);
    });

    // Serial-order replay over the wave's span.
    wave_writes.clear();
    std::size_t next = 0;
    for (std::size_t p = pos; p < span_end; ++p) {
      const std::size_t idx = order[p];
      NetRouteResult& record = result.nets[idx];
      Speculation* spec = nullptr;
      if (next < wave.size() && wave[next].pos == p) spec = &wave[next++];
      if (spec != nullptr && accept_speculation(ctx, *spec, record, failed, wave_writes)) {
        continue;
      }
      if (spec != nullptr) {
        counters().nets_spec_recomputed.fetch_add(1, std::memory_order_relaxed);
      }
      TileRect write_box;
      route_net_live(ctx, idx, record, failed, &write_box);
      if (!write_box.empty()) wave_writes.push_back(write_box);
    }
    pos = span_end;
  }
}

/// Partition-tree region per net for the wave scheduler, or -1 for nets
/// that always route live: trivial single-block nets and nets whose
/// algorithm scans unscoped oracle trees (their reads are unbounded, so no
/// footprint rectangle could validate them).
std::vector<int> schedule_regions(const Circuit& circuit, const RouterOptions& options,
                                  const PartitionTree& ptree, const TileRect& bounds) {
  std::vector<int> regions(circuit.nets.size(), -1);
  for (std::size_t i = 0; i < circuit.nets.size(); ++i) {
    const CircuitNet& net = circuit.nets[i];
    const Algorithm algo = net.critical ? options.critical_algorithm : options.algorithm;
    if (!algorithm_supports_scoped_paths(algo)) continue;
    TileRect box;
    box.include(2 * net.source.x + 1, 2 * net.source.y + 1);
    bool trivial = true;
    for (const PinRef& p : net.sinks) {
      if (p != net.source) trivial = false;
      box.include(2 * p.x + 1, 2 * p.y + 1);
    }
    if (trivial) continue;  // no sinks after dedup: routes in O(1) anyway
    // Expected search extent: the scoped Dijkstra radius is ~1.3x the
    // terminal span plus slack, so pad the terminal box accordingly. The
    // margin is a scheduling heuristic — too small shows up as rejected
    // speculations, too large as missed parallelism, never as a wrong
    // result.
    const int span = box.width() > box.height() ? box.width() : box.height();
    regions[i] = ptree.assign(box.expanded(6 + span / 4).clipped(bounds));
  }
  return regions;
}

}  // namespace

namespace router_internal {

void route_single_net(Device& device, const Circuit& circuit, const RouterOptions& options,
                      WorkBudget& budget, int fault_retries,
                      std::vector<NetCommitLog>* commit_logs, std::size_t idx,
                      NetRouteResult& record) {
  NetContext ctx{device, circuit, options, budget, fault_retries, commit_logs};
  std::vector<std::size_t> failed;  // single-net call: the status already says it
  route_net_live(ctx, idx, record, failed, nullptr);
}

}  // namespace router_internal

RoutingResult route_circuit(Device& device, const Circuit& circuit,
                            const RouterOptions& options) {
  if (options.mode == RouterMode::kNegotiated) {
    return route_circuit_negotiated(device, circuit, options);
  }
  const std::size_t net_count = circuit.nets.size();
  std::vector<std::size_t> order(net_count);
  std::iota(order.begin(), order.end(), 0);

  RoutingResult result;
  result.nets.assign(net_count, NetRouteResult{});

  // Deterministic work budget, shared by every search the call performs
  // (tree constructions, retries, the decomposed baseline). Node
  // expansions, never wall-clock: the same inputs exhaust it at the same
  // expansion on every platform.
  WorkBudget budget{options.node_budget};
  // Live fault events count as defects for the retry ladder and the
  // post-hoc fault classification: a from-scratch route on a device that
  // survived apply_fault_event() sees the same dead elements a
  // FaultSpec-faulted device would.
  const bool faulty = device.has_faults() || device.has_fault_events();
  const int fault_retries = faulty ? std::max(0, options.fault_retries) : 0;
  NetContext ctx{device, circuit, options, budget, fault_retries};

  // Net-parallel wave mode engages only for configurations whose first
  // attempts are read-confined: whole-net trees (no mid-attempt commits),
  // corridor candidates (enumeration stays inside the Dijkstra footprint),
  // and no node budget (speculative work must not depend on attempt
  // order). The result is bit-identical either way; the gate only decides
  // whether speculation can pay off.
  PoolLease lease(options.threads);
  const bool wave_mode = lease.pool().size() > 1 && net_count > 1 &&
                         !options.decompose_two_pin && options.node_budget <= 0 &&
                         options.route_options.candidates == CandidateStrategy::kCorridor;
  PartitionTree ptree;
  std::vector<int> net_region;
  if (wave_mode) {
    const TileRect bounds = device_tile_bounds(device);
    ptree = PartitionTree::build(bounds);
    net_region = schedule_regions(circuit, options, ptree, bounds);
  }

  int best_failed = static_cast<int>(net_count) + 1;
  int stalled = 0;
  for (int pass = 1; pass <= options.max_passes; ++pass) {
    device.reset();
    const long long work_so_far = budget.used;
    result = RoutingResult{};
    result.nets.assign(net_count, NetRouteResult{});
    if (options.record_commits) {
      result.commit_logs.assign(net_count, NetCommitLog{});
      ctx.commit_logs = &result.commit_logs;  // re-point: the vector was replaced
    }
    result.passes = pass;
    result.work_used = work_so_far;
    std::vector<std::size_t> failed;

    if (wave_mode) {
      route_pass_waves(ctx, order, result, failed, lease.pool(), ptree, net_region);
    } else {
      for (std::size_t pos = 0; pos < order.size(); ++pos) {
        const std::size_t idx = order[pos];
        if (budget.exhausted()) {
          // Out of budget: everything not yet attempted this pass aborts.
          // Nothing is half-committed (whole-net commits happen only after a
          // spanning tree is found; the decomposed baseline rolls back), so
          // the committed prefix is a consistent partial solution.
          for (std::size_t rest = pos; rest < order.size(); ++rest) {
            result.nets[order[rest]].status = NetStatus::kAbortedBudget;
            failed.push_back(order[rest]);
          }
          break;
        }
        route_net_live(ctx, idx, result.nets[idx], failed, nullptr);
      }
    }

    result.work_used = budget.used;
    result.net_order = order;
    if (failed.empty()) {
      result.success = true;
      break;
    }
    result.failed_nets = static_cast<int>(failed.size());
    if (budget.exhausted()) {
      result.budget_exhausted = true;
      break;  // partial solution: committed prefix + per-net abort statuses
    }
    if (result.failed_nets < best_failed) {
      best_failed = result.failed_nets;
      stalled = 0;
    } else if (options.stall_passes > 0 && ++stalled >= options.stall_passes) {
      break;  // not converging; declare this width infeasible
    }
    if (!options.move_to_front) continue;

    // Move-to-front: failed nets (in encounter order) lead the next pass.
    // Membership via a flag vector — the std::find scan was O(failed x nets)
    // per pass. The reorder counter is the other half of the mode-gating
    // contract alongside CongestionRelief's: negotiated mode routes a fixed
    // order, so it must never advance there.
    counters().move_to_front_reorders.fetch_add(1, std::memory_order_relaxed);
    std::vector<char> is_failed(net_count, 0);
    for (const std::size_t idx : failed) is_failed[idx] = 1;
    std::vector<std::size_t> reordered = failed;
    reordered.reserve(net_count);
    for (const std::size_t idx : order) {
      if (!is_failed[idx]) reordered.push_back(idx);
    }
    if (reordered == order) break;  // no progress possible; give up early
    order = std::move(reordered);
  }

  // Post-hoc failure diagnosis + degradation statistics over the final
  // pass's statuses.
  if (faulty && !result.success) {
    router_internal::classify_fault_blocked(device, circuit, result);
  }
  router_internal::accumulate_degradation_stats(device, circuit, options, result);
  router_internal::accumulate_totals(result);
  return result;
}

}  // namespace fpr
