#include "router/router.hpp"

#include <algorithm>
#include <memory>
#include <numeric>

namespace fpr {

std::string_view net_status_name(NetStatus status) {
  switch (status) {
    case NetStatus::kRouted: return "routed";
    case NetStatus::kFailedCongestion: return "congestion";
    case NetStatus::kBlockedByFault: return "fault";
    case NetStatus::kAbortedBudget: return "budget";
  }
  return "?";
}

namespace {

/// Undo record for commit_net: every wire node it consumed and every edge
/// it charged the congestion penalty to (one entry per application, so an
/// edge penalized through several siblings appears several times).
struct CommitLog {
  std::vector<NodeId> wires;
  std::vector<EdgeId> penalized;
};

/// Commits a routed net: removes its wire nodes from the graph (electrical
/// disjointness) and charges the congestion penalty to the edges of the
/// remaining free wires in every channel tile the net touched. When `log`
/// is given, records enough to invert the commit exactly.
int commit_net(Device& device, const std::vector<EdgeId>& edges, double congestion_penalty,
               CommitLog* log = nullptr) {
  Graph& g = device.graph();
  std::vector<NodeId> wires;
  for (const EdgeId e : edges) {
    for (const NodeId v : {g.edge(e).u, g.edge(e).v}) {
      if (device.is_wire(v) && g.node_active(v)) {
        wires.push_back(v);
        g.remove_node(v);
      }
    }
  }
  if (congestion_penalty > 0) {
    for (const NodeId w : wires) {
      for (const NodeId sibling : device.tile_siblings(w)) {
        if (!g.node_active(sibling)) continue;
        for (const EdgeId e : g.incident_edges(sibling)) {
          if (g.edge_active(e)) {
            g.add_edge_weight(e, congestion_penalty);
            if (log) log->penalized.push_back(e);
          }
        }
      }
    }
  }
  if (log) log->wires.insert(log->wires.end(), wires.begin(), wires.end());
  return static_cast<int>(wires.size());
}

/// Exact inverse of the commits recorded in `log`: subtracts every penalty
/// delta and reactivates every consumed wire node, leaving the device as if
/// the net had never been attempted.
void rollback_commits(Device& device, const CommitLog& log, double congestion_penalty) {
  Graph& g = device.graph();
  for (auto it = log.penalized.rbegin(); it != log.penalized.rend(); ++it) {
    g.add_edge_weight(*it, -congestion_penalty);
  }
  for (auto it = log.wires.rbegin(); it != log.wires.rend(); ++it) {
    g.restore_node(*it);
  }
}

/// Scoped congestion relief for fault retries: remaps every edge weight
/// w -> 1 + (w - 1) * scale on construction and undoes the remap exactly on
/// destruction. Penalties charged while the guard is live (the decomposed
/// baseline commits per sink mid-attempt) are preserved: the destructor
/// restores original + (current - relaxed), i.e. only the relief delta is
/// removed. All arithmetic is over dyadic rationals (weights, the 0.25
/// penalty, backoff powers of 0.5), so the restore is bit-exact.
class CongestionRelief {
 public:
  CongestionRelief(Graph& g, double scale) : g_(g) {
    const EdgeId count = g.edge_count();
    original_.reserve(static_cast<std::size_t>(count));
    relaxed_.reserve(static_cast<std::size_t>(count));
    for (EdgeId e = 0; e < count; ++e) {
      const Weight w = g.edge_weight(e);
      const Weight relaxed = 1.0 + (w - 1.0) * scale;
      original_.push_back(w);
      relaxed_.push_back(relaxed);
      if (relaxed != w) g_.set_edge_weight(e, relaxed);
    }
  }

  CongestionRelief(const CongestionRelief&) = delete;
  CongestionRelief& operator=(const CongestionRelief&) = delete;

  ~CongestionRelief() {
    for (EdgeId e = 0; e < static_cast<EdgeId>(original_.size()); ++e) {
      const auto idx = static_cast<std::size_t>(e);
      const Weight target = original_[idx] + (g_.edge_weight(e) - relaxed_[idx]);
      if (g_.edge_weight(e) != target) g_.set_edge_weight(e, target);
    }
  }

 private:
  Graph& g_;
  std::vector<Weight> original_;
  std::vector<Weight> relaxed_;
};

/// Routes one net as a whole tree with the configured algorithm
/// (the critical-net algorithm when the net is flagged critical).
RoutingTree route_whole_net(const Graph& g, const Net& net, bool critical,
                            const RouterOptions& options, PathOracle& oracle) {
  const Algorithm algo = critical ? options.critical_algorithm : options.algorithm;
  return route(g, net, algo, oracle, options.route_options);
}

/// Baseline: each sink is an independent two-pin connection; later
/// connections may not reuse earlier ones' wires (they are consumed by the
/// caller between... no — within the *net* the connections stay disjoint
/// too, which is exactly the waste the paper's Steiner routing removes).
struct TwoPinOutcome {
  bool routed = false;
  bool budget_aborted = false;
  std::vector<EdgeId> edges;
  Weight wirelength = 0;
  Weight max_pathlength = 0;
  int physical_max_path = 0;
  int wire_nodes_used = 0;
};

TwoPinOutcome route_two_pin_decomposed(Device& device, const Net& net,
                                       double congestion_penalty, WorkBudget* budget) {
  Graph& g = device.graph();
  TwoPinOutcome out;
  std::vector<EdgeId> all_edges;
  CommitLog log;
  // One tree object across all sinks: each commit mutates the graph, so the
  // search must rerun per sink, but the reuse overload keeps the per-sink
  // reruns allocation-free (the tree's vectors are recycled).
  ShortestPathTree spt;
  for (const NodeId sink : net.sinks) {
    dijkstra(g, net.source, spt, budget);
    if (!spt.reached(sink)) {
      // A later sink failed after earlier sinks already consumed wires and
      // charged congestion: the whole net fails, so give those resources
      // back — otherwise the dead net starves every net after it for the
      // rest of the pass.
      rollback_commits(device, log, congestion_penalty);
      TwoPinOutcome failed;
      failed.budget_aborted = spt.budget_aborted;
      return failed;  // routed == false, zero wires held
    }
    const auto path = spt.path_edges_to(sink);
    out.max_pathlength = std::max(out.max_pathlength, spt.distance(sink));
    out.physical_max_path = std::max(out.physical_max_path, static_cast<int>(path.size()));
    out.wirelength += spt.distance(sink);
    all_edges.insert(all_edges.end(), path.begin(), path.end());
    // Consume immediately so the next connection cannot share wires.
    out.wire_nodes_used += commit_net(device, path, congestion_penalty, &log);
  }
  out.routed = true;
  out.edges = std::move(all_edges);
  return out;
}

/// Reclassifies the failed-by-congestion nets of `result` against an empty
/// device with the same faults installed: a terminal unreachable there is
/// unreachable at ANY congestion level, so the net is defect-blocked, not
/// capacity-starved. Runs unbudgeted — it is post-hoc diagnosis, not
/// routing work — and only when faults are present (on a pristine device
/// every block is reachable by construction, making the probe a no-op).
void classify_fault_blocked(const Device& device, const Circuit& circuit,
                            RoutingResult& result) {
  std::unique_ptr<Device> probe;
  PathOracle* oracle = nullptr;
  std::unique_ptr<PathOracle> oracle_storage;
  for (std::size_t idx = 0; idx < result.nets.size(); ++idx) {
    NetRouteResult& record = result.nets[idx];
    if (record.status != NetStatus::kFailedCongestion) continue;
    if (probe == nullptr) {
      probe = std::make_unique<Device>(device.spec());
      probe->install_faults(device.faults()->spec());
      oracle_storage = std::make_unique<PathOracle>(probe->graph());
      oracle = oracle_storage.get();
    }
    const Net net = to_graph_net(*probe, circuit.nets[idx]);
    const ShortestPathTree& spt = oracle->from(net.source);
    for (const NodeId sink : net.sinks) {
      if (!spt.reached(sink)) {
        record.status = NetStatus::kBlockedByFault;
        record.blocked_sink = sink;
        break;
      }
    }
  }
}

/// Physical wirelength of `net` routed alone on a pristine fault-free
/// device — the fault-free baseline the detour-overhead statistic compares
/// against. Returns -1 when even the solo route fails (pathological widths).
int solo_fault_free_wirelength(Device& pristine, const CircuitNet& circuit_net,
                               bool critical, const RouterOptions& options) {
  pristine.reset();
  const Net net = to_graph_net(pristine, circuit_net);
  if (net.sinks.empty()) return 0;
  Graph& g = pristine.graph();
  PathOracle oracle(g);
  const std::vector<NodeId> terminals = net.terminals();
  const Algorithm algo = critical ? options.critical_algorithm : options.algorithm;
  if (algorithm_supports_scoped_paths(algo)) oracle.set_scope(terminals);
  const RoutingTree tree = route(g, net, algo, oracle, options.route_options);
  if (!tree.spans(terminals)) return -1;
  return static_cast<int>(tree.edges().size());
}

/// Degradation bookkeeping over the final per-net statuses: status counts,
/// and the extra wirelength fault-displaced nets pay versus their solo
/// fault-free routes.
void accumulate_degradation_stats(const Device& device, const Circuit& circuit,
                                  const RouterOptions& options, RoutingResult& result) {
  std::unique_ptr<Device> pristine;  // built lazily: most runs have no detours
  for (std::size_t idx = 0; idx < result.nets.size(); ++idx) {
    const NetRouteResult& record = result.nets[idx];
    switch (record.status) {
      case NetStatus::kBlockedByFault: ++result.nets_blocked_by_fault; break;
      case NetStatus::kAbortedBudget: ++result.nets_aborted_budget; break;
      default: break;
    }
    if (!record.routed() || record.retries == 0) continue;
    ++result.nets_rerouted_around_faults;
    if (pristine == nullptr) pristine = std::make_unique<Device>(device.spec());
    const int solo = solo_fault_free_wirelength(*pristine, circuit.nets[idx],
                                                circuit.nets[idx].critical, options);
    if (solo >= 0 && record.physical_wirelength > solo) {
      result.detour_wirelength_overhead += record.physical_wirelength - solo;
    }
  }
}

}  // namespace

RoutingResult route_circuit(Device& device, const Circuit& circuit,
                            const RouterOptions& options) {
  const std::size_t net_count = circuit.nets.size();
  std::vector<std::size_t> order(net_count);
  std::iota(order.begin(), order.end(), 0);

  RoutingResult result;
  result.nets.assign(net_count, NetRouteResult{});

  // Deterministic work budget, shared by every search the call performs
  // (tree constructions, retries, the decomposed baseline). Node
  // expansions, never wall-clock: the same inputs exhaust it at the same
  // expansion on every platform.
  WorkBudget budget{options.node_budget};
  const bool faulty = device.has_faults();
  const int fault_retries = faulty ? std::max(0, options.fault_retries) : 0;

  int best_failed = static_cast<int>(net_count) + 1;
  int stalled = 0;
  for (int pass = 1; pass <= options.max_passes; ++pass) {
    device.reset();
    const long long work_so_far = budget.used;
    result = RoutingResult{};
    result.nets.assign(net_count, NetRouteResult{});
    result.passes = pass;
    result.work_used = work_so_far;
    std::vector<std::size_t> failed;

    for (std::size_t pos = 0; pos < order.size(); ++pos) {
      const std::size_t idx = order[pos];
      NetRouteResult& record = result.nets[idx];
      if (budget.exhausted()) {
        // Out of budget: everything not yet attempted this pass aborts.
        // Nothing is half-committed (whole-net commits happen only after a
        // spanning tree is found; the decomposed baseline rolls back), so
        // the committed prefix is a consistent partial solution.
        for (std::size_t rest = pos; rest < order.size(); ++rest) {
          result.nets[order[rest]].status = NetStatus::kAbortedBudget;
          failed.push_back(order[rest]);
        }
        break;
      }
      const Net net = to_graph_net(device, circuit.nets[idx]);
      if (net.sinks.empty()) {  // all pins on one block: trivially routed
        record.status = NetStatus::kRouted;
        continue;
      }
      Graph& g = device.graph();

      if (options.decompose_two_pin) {
        // Optimal pathlength bound measured before any of the net's own
        // connections consume resources.
        PathOracle oracle(g);
        oracle.set_budget(&budget);
        const auto& spt = oracle.from(net.source);
        Weight opt = 0;
        bool reachable = true;
        for (const NodeId s : net.sinks) {
          if (!spt.reached(s)) reachable = false;
          opt = std::max(opt, spt.distance(s));
        }
        if (!reachable) {
          record.status =
              budget.exhausted() ? NetStatus::kAbortedBudget : NetStatus::kFailedCongestion;
          failed.push_back(idx);
          continue;
        }
        auto out = route_two_pin_decomposed(device, net, options.congestion_penalty, &budget);
        double relief_scale = 1.0;
        while (!out.routed && !out.budget_aborted && record.retries < fault_retries) {
          ++record.retries;
          relief_scale *= options.fault_relief_backoff;
          CongestionRelief relief(g, relief_scale);
          out = route_two_pin_decomposed(device, net, options.congestion_penalty, &budget);
        }
        if (!out.routed) {
          record.status =
              out.budget_aborted ? NetStatus::kAbortedBudget : NetStatus::kFailedCongestion;
          failed.push_back(idx);
          continue;
        }
        record.status = NetStatus::kRouted;
        record.edges = std::move(out.edges);
        record.wirelength = out.wirelength;
        record.max_pathlength = out.max_pathlength;
        record.optimal_max_pathlength = opt;
        record.physical_wirelength = static_cast<int>(record.edges.size());
        record.physical_max_path = out.physical_max_path;
        record.wire_nodes_used = out.wire_nodes_used;
        continue;
      }

      PathOracle oracle(g);
      oracle.set_budget(&budget);
      const std::vector<NodeId> terminals = net.terminals();
      const bool critical = circuit.nets[idx].critical;
      const Algorithm algo = critical ? options.critical_algorithm : options.algorithm;
      // Radius-bounded shortest paths: local nets only pay for their
      // neighborhood of the device graph, not the whole chip.
      if (algorithm_supports_scoped_paths(algo)) {
        oracle.set_scope(terminals);
      }
      RoutingTree tree = route_whole_net(g, net, critical, options, oracle);

      // Fault-retry ladder: a defect can sever exactly the corridor the
      // congestion weights and candidate cap funnel this net into, so each
      // retry widens the search — unscoped oracle, unlimited candidates,
      // then the DJKA arborescence (pure shortest paths reach anything
      // reachable) — under geometrically relaxed congestion.
      double relief_scale = 1.0;
      while (!tree.spans(terminals) && !budget.exhausted() &&
             record.retries < fault_retries) {
        ++record.retries;
        relief_scale *= options.fault_relief_backoff;
        CongestionRelief relief(g, relief_scale);
        PathOracle retry_oracle(g);
        retry_oracle.set_budget(&budget);
        const Algorithm retry_algo = record.retries == 1 ? algo : Algorithm::kDjka;
        const RouteOptions wide{CandidateStrategy::kAllNodes, 0, 0};
        tree = route(g, net, retry_algo, retry_oracle, wide);
      }

      if (!tree.spans(terminals)) {
        record.status =
            budget.exhausted() ? NetStatus::kAbortedBudget : NetStatus::kFailedCongestion;
        failed.push_back(idx);
        continue;
      }
      // Measure on the true (unrelieved) weights; `oracle` self-refreshes
      // across the retry mutations via the graph revision counter.
      const TreeMetrics metrics = measure(g, net, tree, oracle);
      record.status = NetStatus::kRouted;
      record.edges = tree.edges();
      record.wirelength = metrics.wirelength;
      record.max_pathlength = metrics.max_pathlength;
      record.optimal_max_pathlength = metrics.optimal_max_pathlength;
      record.physical_wirelength = static_cast<int>(tree.edges().size());
      record.physical_max_path = tree.max_path_edge_count(net.source, net.sinks);
      record.wire_nodes_used = commit_net(device, tree.edges(), options.congestion_penalty);
    }

    result.work_used = budget.used;
    if (failed.empty()) {
      result.success = true;
      break;
    }
    result.failed_nets = static_cast<int>(failed.size());
    if (budget.exhausted()) {
      result.budget_exhausted = true;
      break;  // partial solution: committed prefix + per-net abort statuses
    }
    if (result.failed_nets < best_failed) {
      best_failed = result.failed_nets;
      stalled = 0;
    } else if (options.stall_passes > 0 && ++stalled >= options.stall_passes) {
      break;  // not converging; declare this width infeasible
    }
    if (!options.move_to_front) continue;

    // Move-to-front: failed nets (in encounter order) lead the next pass.
    std::vector<std::size_t> reordered = failed;
    for (const std::size_t idx : order) {
      if (std::find(failed.begin(), failed.end(), idx) == failed.end()) {
        reordered.push_back(idx);
      }
    }
    if (reordered == order) break;  // no progress possible; give up early
    order = std::move(reordered);
  }

  // Post-hoc failure diagnosis + degradation statistics over the final
  // pass's statuses.
  if (faulty && !result.success) classify_fault_blocked(device, circuit, result);
  accumulate_degradation_stats(device, circuit, options, result);

  // Aggregate totals over routed nets.
  for (const auto& record : result.nets) {
    if (!record.routed()) continue;
    result.total_wirelength += record.wirelength;
    result.total_wire_nodes += record.wire_nodes_used;
    result.total_max_pathlength += record.max_pathlength;
    result.total_optimal_max_pathlength += record.optimal_max_pathlength;
    result.total_physical_wirelength += record.physical_wirelength;
    result.total_physical_max_path += record.physical_max_path;
  }
  return result;
}

}  // namespace fpr
