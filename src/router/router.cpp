#include "router/router.hpp"

#include <algorithm>
#include <numeric>

namespace fpr {

namespace {

/// Undo record for commit_net: every wire node it consumed and every edge
/// it charged the congestion penalty to (one entry per application, so an
/// edge penalized through several siblings appears several times).
struct CommitLog {
  std::vector<NodeId> wires;
  std::vector<EdgeId> penalized;
};

/// Commits a routed net: removes its wire nodes from the graph (electrical
/// disjointness) and charges the congestion penalty to the edges of the
/// remaining free wires in every channel tile the net touched. When `log`
/// is given, records enough to invert the commit exactly.
int commit_net(Device& device, const std::vector<EdgeId>& edges, double congestion_penalty,
               CommitLog* log = nullptr) {
  Graph& g = device.graph();
  std::vector<NodeId> wires;
  for (const EdgeId e : edges) {
    for (const NodeId v : {g.edge(e).u, g.edge(e).v}) {
      if (device.is_wire(v) && g.node_active(v)) {
        wires.push_back(v);
        g.remove_node(v);
      }
    }
  }
  if (congestion_penalty > 0) {
    for (const NodeId w : wires) {
      for (const NodeId sibling : device.tile_siblings(w)) {
        if (!g.node_active(sibling)) continue;
        for (const EdgeId e : g.incident_edges(sibling)) {
          if (g.edge_active(e)) {
            g.add_edge_weight(e, congestion_penalty);
            if (log) log->penalized.push_back(e);
          }
        }
      }
    }
  }
  if (log) log->wires.insert(log->wires.end(), wires.begin(), wires.end());
  return static_cast<int>(wires.size());
}

/// Exact inverse of the commits recorded in `log`: subtracts every penalty
/// delta and reactivates every consumed wire node, leaving the device as if
/// the net had never been attempted.
void rollback_commits(Device& device, const CommitLog& log, double congestion_penalty) {
  Graph& g = device.graph();
  for (auto it = log.penalized.rbegin(); it != log.penalized.rend(); ++it) {
    g.add_edge_weight(*it, -congestion_penalty);
  }
  for (auto it = log.wires.rbegin(); it != log.wires.rend(); ++it) {
    g.restore_node(*it);
  }
}

/// Routes one net as a whole tree with the configured algorithm
/// (the critical-net algorithm when the net is flagged critical).
RoutingTree route_whole_net(const Graph& g, const Net& net, bool critical,
                            const RouterOptions& options, PathOracle& oracle) {
  const Algorithm algo = critical ? options.critical_algorithm : options.algorithm;
  return route(g, net, algo, oracle, options.route_options);
}

/// Baseline: each sink is an independent two-pin connection; later
/// connections may not reuse earlier ones' wires (they are consumed by the
/// caller between... no — within the *net* the connections stay disjoint
/// too, which is exactly the waste the paper's Steiner routing removes).
struct TwoPinOutcome {
  bool routed = false;
  std::vector<EdgeId> edges;
  Weight wirelength = 0;
  Weight max_pathlength = 0;
  int physical_max_path = 0;
  int wire_nodes_used = 0;
};

TwoPinOutcome route_two_pin_decomposed(Device& device, const Net& net,
                                       double congestion_penalty) {
  Graph& g = device.graph();
  TwoPinOutcome out;
  std::vector<EdgeId> all_edges;
  CommitLog log;
  // One tree object across all sinks: each commit mutates the graph, so the
  // search must rerun per sink, but the reuse overload keeps the per-sink
  // reruns allocation-free (the tree's vectors are recycled).
  ShortestPathTree spt;
  for (const NodeId sink : net.sinks) {
    dijkstra(g, net.source, spt);
    if (!spt.reached(sink)) {
      // A later sink failed after earlier sinks already consumed wires and
      // charged congestion: the whole net fails, so give those resources
      // back — otherwise the dead net starves every net after it for the
      // rest of the pass.
      rollback_commits(device, log, congestion_penalty);
      return TwoPinOutcome{};  // routed == false, zero wires held
    }
    const auto path = spt.path_edges_to(sink);
    out.max_pathlength = std::max(out.max_pathlength, spt.distance(sink));
    out.physical_max_path = std::max(out.physical_max_path, static_cast<int>(path.size()));
    out.wirelength += spt.distance(sink);
    all_edges.insert(all_edges.end(), path.begin(), path.end());
    // Consume immediately so the next connection cannot share wires.
    out.wire_nodes_used += commit_net(device, path, congestion_penalty, &log);
  }
  out.routed = true;
  out.edges = std::move(all_edges);
  return out;
}

}  // namespace

RoutingResult route_circuit(Device& device, const Circuit& circuit,
                            const RouterOptions& options) {
  const std::size_t net_count = circuit.nets.size();
  std::vector<std::size_t> order(net_count);
  std::iota(order.begin(), order.end(), 0);

  RoutingResult result;
  result.nets.assign(net_count, NetRouteResult{});

  int best_failed = static_cast<int>(net_count) + 1;
  int stalled = 0;
  for (int pass = 1; pass <= options.max_passes; ++pass) {
    device.reset();
    result = RoutingResult{};
    result.nets.assign(net_count, NetRouteResult{});
    result.passes = pass;
    std::vector<std::size_t> failed;

    for (const std::size_t idx : order) {
      const Net net = to_graph_net(device, circuit.nets[idx]);
      NetRouteResult& record = result.nets[idx];
      if (net.sinks.empty()) {  // all pins on one block: trivially routed
        record.routed = true;
        continue;
      }
      Graph& g = device.graph();

      if (options.decompose_two_pin) {
        // Optimal pathlength bound measured before any of the net's own
        // connections consume resources.
        PathOracle oracle(g);
        const auto& spt = oracle.from(net.source);
        Weight opt = 0;
        bool reachable = true;
        for (const NodeId s : net.sinks) {
          if (!spt.reached(s)) reachable = false;
          opt = std::max(opt, spt.distance(s));
        }
        if (!reachable) {
          failed.push_back(idx);
          continue;
        }
        auto out = route_two_pin_decomposed(device, net, options.congestion_penalty);
        if (!out.routed) {
          failed.push_back(idx);
          continue;
        }
        record.routed = true;
        record.edges = std::move(out.edges);
        record.wirelength = out.wirelength;
        record.max_pathlength = out.max_pathlength;
        record.optimal_max_pathlength = opt;
        record.physical_wirelength = static_cast<int>(record.edges.size());
        record.physical_max_path = out.physical_max_path;
        record.wire_nodes_used = out.wire_nodes_used;
        continue;
      }

      PathOracle oracle(g);
      const std::vector<NodeId> terminals = net.terminals();
      const bool critical = circuit.nets[idx].critical;
      const Algorithm algo = critical ? options.critical_algorithm : options.algorithm;
      // Radius-bounded shortest paths: local nets only pay for their
      // neighborhood of the device graph, not the whole chip.
      if (algorithm_supports_scoped_paths(algo)) {
        oracle.set_scope(terminals);
      }
      const RoutingTree tree = route_whole_net(g, net, critical, options, oracle);
      if (!tree.spans(terminals)) {
        failed.push_back(idx);
        continue;
      }
      const TreeMetrics metrics = measure(g, net, tree, oracle);
      record.routed = true;
      record.edges = tree.edges();
      record.wirelength = metrics.wirelength;
      record.max_pathlength = metrics.max_pathlength;
      record.optimal_max_pathlength = metrics.optimal_max_pathlength;
      record.physical_wirelength = static_cast<int>(tree.edges().size());
      record.physical_max_path = tree.max_path_edge_count(net.source, net.sinks);
      record.wire_nodes_used = commit_net(device, tree.edges(), options.congestion_penalty);
    }

    if (failed.empty()) {
      result.success = true;
      break;
    }
    result.failed_nets = static_cast<int>(failed.size());
    if (result.failed_nets < best_failed) {
      best_failed = result.failed_nets;
      stalled = 0;
    } else if (options.stall_passes > 0 && ++stalled >= options.stall_passes) {
      break;  // not converging; declare this width infeasible
    }
    if (!options.move_to_front) continue;

    // Move-to-front: failed nets (in encounter order) lead the next pass.
    std::vector<std::size_t> reordered = failed;
    for (const std::size_t idx : order) {
      if (std::find(failed.begin(), failed.end(), idx) == failed.end()) {
        reordered.push_back(idx);
      }
    }
    if (reordered == order) break;  // no progress possible; give up early
    order = std::move(reordered);
  }

  // Aggregate totals over routed nets.
  for (const auto& record : result.nets) {
    if (!record.routed) continue;
    result.total_wirelength += record.wirelength;
    result.total_wire_nodes += record.wire_nodes_used;
    result.total_max_pathlength += record.max_pathlength;
    result.total_optimal_max_pathlength += record.optimal_max_pathlength;
    result.total_physical_wirelength += record.physical_wirelength;
    result.total_physical_max_path += record.physical_max_path;
  }
  return result;
}

}  // namespace fpr
