#pragma once

#include <vector>

#include "fpga/device.hpp"

namespace fpr {

/// Axis-aligned rectangle over the device's unified half-tile grid (see
/// Device::node_tile): logic blocks sit at odd (x, y), channel segments at
/// the even coordinate of their channel axis. Coordinates are inclusive;
/// the default-constructed rect is empty (x1 < x0). Every device edge
/// connects nodes within Chebyshev distance 2 of each other in this grid,
/// which is what makes a rectangle a sound over-approximation of a search's
/// read set (DESIGN.md §11).
struct TileRect {
  int x0 = 0;
  int y0 = 0;
  int x1 = -1;
  int y1 = -1;

  bool empty() const { return x1 < x0 || y1 < y0; }
  int width() const { return empty() ? 0 : x1 - x0 + 1; }
  int height() const { return empty() ? 0 : y1 - y0 + 1; }

  bool intersects(const TileRect& o) const {
    return !empty() && !o.empty() && x0 <= o.x1 && o.x0 <= x1 && y0 <= o.y1 && o.y0 <= y1;
  }

  /// True when every point of `o` lies inside this rect. The empty rect is
  /// contained in everything (vacuous truth) and contains nothing but
  /// itself — via the first clause, since an empty `o` has no points.
  bool contains(const TileRect& o) const {
    if (o.empty()) return true;
    return !empty() && x0 <= o.x0 && o.x1 <= x1 && y0 <= o.y0 && o.y1 <= y1;
  }

  bool contains_point(int x, int y) const {
    return !empty() && x0 <= x && x <= x1 && y0 <= y && y <= y1;
  }

  void include(int x, int y) {
    if (empty()) {
      x0 = x1 = x;
      y0 = y1 = y;
      return;
    }
    x0 = x < x0 ? x : x0;
    x1 = x > x1 ? x : x1;
    y0 = y < y0 ? y : y0;
    y1 = y > y1 ? y : y1;
  }

  void include(const TileRect& o) {
    if (o.empty()) return;
    include(o.x0, o.y0);
    include(o.x1, o.y1);
  }

  /// Grown by `margin` grid units on every side; empty stays empty.
  TileRect expanded(int margin) const {
    if (empty()) return *this;
    return TileRect{x0 - margin, y0 - margin, x1 + margin, y1 + margin};
  }

  /// Intersection with `bounds` (empty when disjoint).
  TileRect clipped(const TileRect& bounds) const {
    if (!intersects(bounds)) return TileRect{};
    return TileRect{x0 > bounds.x0 ? x0 : bounds.x0, y0 > bounds.y0 ? y0 : bounds.y0,
                    x1 < bounds.x1 ? x1 : bounds.x1, y1 < bounds.y1 ? y1 : bounds.y1};
  }

  friend bool operator==(const TileRect&, const TileRect&) = default;
};

/// The whole routable area of `device` in unified half-tile coordinates.
TileRect device_tile_bounds(const Device& device);

/// Recursive spatial bisection of the device area — the net-parallel
/// router's scheduler (DESIGN.md §11, after VPR's partition tree). Each
/// internal node splits its region across the middle of the wider axis into
/// two disjoint child regions that exactly tile it; splitting stops at
/// Options::leaf_span or max_depth. A net whose bounding box crosses a
/// cutline "lives at" the branch node above that cut: assign() returns the
/// lowest tree node whose region contains the box, which for any box is the
/// lowest common ancestor of the leaves its corners fall in.
///
/// Two nets may route concurrently when independent(assign(a), assign(b)):
/// their tree regions are disjoint, so a tree-region-confined search for
/// one can never observe the other's commits. The router treats the tree
/// purely as a scheduler — actual disjointness of each search's observed
/// footprint is re-validated before a speculative route is accepted, so
/// scheduling quality affects speed, never results.
class PartitionTree {
 public:
  struct Options {
    /// Stop splitting once a region's wider side is at most this many grid
    /// units. Half-tile units: 8 spans four logic-block columns.
    int leaf_span = 8;
    int max_depth = 12;
  };

  struct Node {
    TileRect region;
    int parent = -1;
    int low = -1;   // child covering the low side of the cut (-1 at leaves)
    int high = -1;  // child covering the high side
    int depth = 0;
  };

  static PartitionTree build(const TileRect& bounds);  // default Options
  static PartitionTree build(const TileRect& bounds, const Options& options);

  int size() const { return static_cast<int>(nodes_.size()); }
  int root() const { return nodes_.empty() ? -1 : 0; }
  const Node& node(int id) const { return nodes_[static_cast<std::size_t>(id)]; }
  bool is_leaf(int id) const { return node(id).low < 0; }
  std::vector<int> leaves() const;

  /// The lowest node whose region contains `box` (the root when only the
  /// root does). Precondition: the root region contains `box`; clip net
  /// boxes to device_tile_bounds() before assigning. -1 for an empty tree.
  int assign(const TileRect& box) const;

  /// Nets assigned to `a` and `b` occupy disjoint device regions — in a
  /// bisection tree, region disjointness is exactly "neither node is an
  /// ancestor of the other".
  bool independent(int a, int b) const { return !node(a).region.intersects(node(b).region); }

 private:
  std::vector<Node> nodes_;
};

}  // namespace fpr
