#include "router/patterns.hpp"

#include <algorithm>
#include <array>
#include <cstdlib>
#include <queue>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/contract.hpp"
#include "graph/graph.hpp"

namespace fpr {
namespace {

/// Corridor rectangles are grown by this margin on every side so the two
/// channels flanking a terminal's block row/column — and the switchboxes a
/// turn needs — are inside the searchable area (every device edge spans
/// Chebyshev distance <= 2 on the half-tile grid).
constexpr int kMargin = 2;

/// Z-shaped detours only make sense once the bent axis is long enough for
/// the midpoint jog to differ from the two L corners. Half-tile units.
constexpr int kZMinSpan = 6;

/// Up to three clipped rectangles forming one candidate corridor.
struct Corridor {
  std::array<TileRect, 3> legs;
  int leg_count = 0;

  void add(const TileRect& r) {
    FPR_CHECK(leg_count < 3, "Corridor: more than three legs");
    legs[static_cast<std::size_t>(leg_count++)] = r;
  }

  bool contains(int x, int y) const {
    for (int i = 0; i < leg_count; ++i) {
      if (legs[static_cast<std::size_t>(i)].contains_point(x, y)) return true;
    }
    return false;
  }

  TileRect bounds() const {
    TileRect r;
    for (int i = 0; i < leg_count; ++i) r.include(legs[static_cast<std::size_t>(i)]);
    return r;
  }
};

TileRect leg(const Device::TilePos& a, const Device::TilePos& b, const TileRect& bounds) {
  TileRect r;
  r.include(a.x, a.y);
  r.include(b.x, b.y);
  return r.expanded(kMargin).clipped(bounds);
}

/// The fixed candidate order: straight (aligned terminals), else the two L
/// shapes, then — once the jog axis is long enough — the two Z shapes.
std::vector<Corridor> candidate_corridors(const Device::TilePos& s, const Device::TilePos& t,
                                          const TileRect& bounds) {
  std::vector<Corridor> out;
  if (s.x == t.x || s.y == t.y) {
    Corridor straight;
    straight.add(leg(s, t, bounds));
    out.push_back(straight);
    return out;
  }
  const Device::TilePos corner_h{t.x, s.y};  // horizontal leg first
  const Device::TilePos corner_v{s.x, t.y};  // vertical leg first
  Corridor l_hv;
  l_hv.add(leg(s, corner_h, bounds));
  l_hv.add(leg(corner_h, t, bounds));
  out.push_back(l_hv);
  Corridor l_vh;
  l_vh.add(leg(s, corner_v, bounds));
  l_vh.add(leg(corner_v, t, bounds));
  out.push_back(l_vh);
  if (std::abs(t.x - s.x) >= kZMinSpan) {
    const int mid = (s.x + t.x) / 2;
    Corridor z;
    z.add(leg(s, Device::TilePos{mid, s.y}, bounds));
    z.add(leg(Device::TilePos{mid, s.y}, Device::TilePos{mid, t.y}, bounds));
    z.add(leg(Device::TilePos{mid, t.y}, t, bounds));
    out.push_back(z);
  }
  if (std::abs(t.y - s.y) >= kZMinSpan) {
    const int mid = (s.y + t.y) / 2;
    Corridor z;
    z.add(leg(s, Device::TilePos{s.x, mid}, bounds));
    z.add(leg(Device::TilePos{s.x, mid}, Device::TilePos{t.x, mid}, bounds));
    z.add(leg(Device::TilePos{t.x, mid}, t, bounds));
    out.push_back(z);
  }
  return out;
}

/// Best-first search confined to `corridor`. Returns true when the sink was
/// reached; fills the probe's path/cost. Ties in the heap break on node id
/// (the pair's second member), so the settled order — and therefore the
/// parent tree — is deterministic.
bool search_corridor(const Device& device, const CongestionLayer& layer, const Corridor& corridor,
                     NodeId source, NodeId sink, WorkBudget* budget, PatternProbe& probe) {
  const Graph& g = device.graph();
  std::unordered_map<NodeId, Weight> dist;
  std::unordered_map<NodeId, std::pair<NodeId, EdgeId>> parent;  // node -> (prev node, via edge)
  using Entry = std::pair<Weight, NodeId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  dist.emplace(source, Weight{0});
  heap.emplace(Weight{0}, source);

  while (!heap.empty()) {
    const auto [d, v] = heap.top();
    heap.pop();
    const auto it = dist.find(v);
    if (it == dist.end() || d > it->second) continue;  // stale entry
    if (budget != nullptr && !budget->charge()) {
      probe.budget_aborted = true;
      return false;
    }
    ++probe.expansions;
    if (v == sink) {
      // Reconstruct sink -> source, then flip to source -> sink order.
      probe.cost = d;
      probe.edges.clear();
      NodeId cur = sink;
      while (cur != source) {
        const auto p = parent.find(cur);
        FPR_CHECK(p != parent.end(), "pattern search: broken parent chain at node " << cur);
        probe.edges.push_back(p->second.second);
        cur = p->second.first;
      }
      std::reverse(probe.edges.begin(), probe.edges.end());
      return true;
    }
    // Membership first (pure geometry), then the capacity prune, then edge
    // usability/weight — so no graph or layer STATE outside the corridor is
    // ever read, keeping the probe's read set inside probed_area.
    for (const EdgeId e : g.incident_edges(v)) {
      const NodeId w = g.other_end(e, v);
      const Device::TilePos pos = device.node_tile(w);
      if (!corridor.contains(pos.x, pos.y)) continue;
      if (device.is_wire(w) && layer.would_overflow(w)) continue;
      if (!g.edge_usable(e)) continue;
      const Weight nd = d + g.edge_weight(e);
      const auto [slot, fresh] = dist.try_emplace(w, nd);
      if (!fresh && nd >= slot->second) continue;
      slot->second = nd;
      parent[w] = {v, e};
      heap.emplace(nd, w);
    }
  }
  return false;
}

}  // namespace

PatternProbe pattern_route(const Device& device, const CongestionLayer& layer, NodeId source,
                           NodeId sink, WorkBudget* budget) {
  FPR_CHECK(source != sink, "pattern_route: source and sink coincide (node " << source << ")");
  PatternProbe probe;
  const TileRect bounds = device_tile_bounds(device);
  const Device::TilePos s = device.node_tile(source);
  const Device::TilePos t = device.node_tile(sink);
  for (const Corridor& corridor : candidate_corridors(s, t, bounds)) {
    probe.probed_area.include(corridor.bounds());
    if (budget != nullptr && budget->exhausted()) {
      probe.budget_aborted = true;
      break;
    }
    if (search_corridor(device, layer, corridor, source, sink, budget, probe)) {
      probe.accepted = true;
      break;
    }
    if (probe.budget_aborted) break;
  }
  return probe;
}

}  // namespace fpr
