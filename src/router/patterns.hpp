#pragma once

#include <vector>

#include "fpga/device.hpp"
#include "graph/budget.hpp"
#include "graph/congestion_layer.hpp"
#include "graph/types.hpp"
#include "router/partition.hpp"

namespace fpr {

/// Outcome of a corridor pattern probe (pattern_route below).
struct PatternProbe {
  /// True when `edges` is a usable source->sink path: every hop fault-free
  /// and every wire on it below capacity at probe time. False means the
  /// caller must fall back to the full scoped engine — the probe proves
  /// nothing about infeasibility, only that the cheap corridors failed.
  bool accepted = false;
  /// The probe's work budget expired mid-search (accepted is then false).
  bool budget_aborted = false;

  std::vector<EdgeId> edges;  // path edges, source -> sink order
  Weight cost = 0;            // sum of live edge weights along the path

  /// Union of every corridor rectangle the probe searched (half-tile
  /// coordinates) — the probe's entire read set, which the wave scheduler
  /// folds into the speculation's read footprint. Node membership is pure
  /// arithmetic, so nothing outside this rectangle is ever READ either.
  TileRect probed_area;

  long long expansions = 0;  // heap pops spent (also charged to the budget)
};

/// Cheap first-attempt router for a two-pin connection (DESIGN.md §13):
/// tries L-shaped and, for long spans, Z-shaped corridor probes between the
/// terminals before the caller pays for a full scoped Dijkstra. Each
/// corridor is a few margin-2 rectangles over the half-tile grid; a
/// best-first search confined to the corridor prunes faulted hops
/// (edge_usable) and at-capacity wires (layer.would_overflow) DURING the
/// search, so any path that reaches the sink is acceptable by construction.
/// Corridors are tried in a fixed order (L horizontal-first, L
/// vertical-first, then the two Z shapes) and the first hit wins —
/// deterministic, and bit-identical across thread counts because the probe
/// reads only graph/layer state plus geometry.
///
/// Cost guarantee the equivalence suite pins: the corridor search relaxes
/// the same live edge weights as the engine over a SUBSET of the graph, so
/// a full Dijkstra on the same snapshot always finds an equal-or-cheaper
/// path — a pattern accept is never better than the engine, just cheaper
/// to compute.
PatternProbe pattern_route(const Device& device, const CongestionLayer& layer, NodeId source,
                           NodeId sink, WorkBudget* budget);

}  // namespace fpr
