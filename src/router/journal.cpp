#include "router/journal.hpp"

#include <fstream>
#include <sstream>

namespace fpr {

namespace {

/// A journal line is skippable when blank or a `#` comment.
bool skippable(const std::string& line) {
  for (const char c : line) {
    if (c == '#') return true;
    if (c != ' ' && c != '\t' && c != '\r') return false;
  }
  return true;
}

std::string strip_cr(std::string line) {
  while (!line.empty() && (line.back() == '\r' || line.back() == '\n')) line.pop_back();
  return line;
}

}  // namespace

std::string RepairJournal::serialize() const {
  std::ostringstream os;
  os << "fpr-journal v1\n";
  for (const JournalEntry& entry : entries_) {
    os << entry.event.describe() << '\n' << entry.outcome.describe() << '\n';
  }
  return os.str();
}

std::optional<RepairJournal> RepairJournal::parse(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  bool saw_header = false;
  RepairJournal journal;
  std::optional<RepairEvent> pending;  // event waiting for its outcome line
  while (std::getline(is, line)) {
    line = strip_cr(line);
    if (skippable(line)) continue;
    if (!saw_header) {
      if (line != "fpr-journal v1") return std::nullopt;
      saw_header = true;
      continue;
    }
    if (!pending.has_value()) {
      pending = RepairEvent::parse(line);
      if (!pending.has_value()) return std::nullopt;
    } else {
      std::optional<RepairOutcome> outcome = RepairOutcome::parse(line);
      if (!outcome.has_value()) return std::nullopt;
      journal.append(std::move(*pending), *outcome);
      pending.reset();
    }
  }
  if (!saw_header || pending.has_value()) return std::nullopt;  // truncated entry
  return journal;
}

bool RepairJournal::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << serialize();
  return static_cast<bool>(out);
}

std::optional<RepairJournal> RepairJournal::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return std::nullopt;
  return parse(buffer.str());
}

JournalReplayResult replay_journal(Device& device, const Circuit& seed,
                                   const RouterOptions& options, const RepairJournal& journal) {
  JournalReplayResult replay;
  replay.circuit = seed;

  // The seed state: spec faults (FaultModel) are part of the device and
  // stay; any accumulated event overlay is NOT — the journal's events will
  // rebuild it in order.
  device.clear_fault_events();

  RouterOptions replay_options = options;
  replay_options.record_commits = true;  // repair needs the commit logs
  replay.result = route_circuit(device, replay.circuit, replay_options);

  replay.ok = true;
  for (std::size_t i = 0; i < journal.entries().size(); ++i) {
    const JournalEntry& entry = journal.entries()[i];
    const RepairOutcome recomputed =
        repair_route(device, replay.circuit, replay.result, entry.event, replay_options);
    replay.outcomes.push_back(recomputed);
    if (replay.ok && !(recomputed == entry.outcome)) {
      replay.ok = false;
      std::ostringstream os;
      os << "journal entry " << i << " diverged: recorded '" << entry.outcome.describe()
         << "' vs recomputed '" << recomputed.describe() << "'";
      replay.error = os.str();
    }
  }
  return replay;
}

}  // namespace fpr
