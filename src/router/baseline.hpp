#pragma once

#include "router/router.hpp"

namespace fpr {

/// Router options for the measured in-framework baseline standing in for
/// the published CGE/SEGA/GBP routers: identical router loop (net ordering,
/// passes, congestion, disjointness), but each multi-pin net is broken into
/// independent two-pin source-sink connections routed by shortest path —
/// the strategy the paper contrasts its whole-net Steiner routing against
/// ("Reduced channel widths are a result of routing multi-pin nets as
/// complete units, rather than breaking them into multiple two-pin nets (as
/// is done by other routers)", Section 5 / Figure 15).
RouterOptions two_pin_baseline_options();

}  // namespace fpr
