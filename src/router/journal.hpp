#pragma once

#include <optional>
#include <string>
#include <vector>

#include "router/repair.hpp"

namespace fpr {

/// One journaled delta: the event a service applied and the outcome its
/// repair reported at the time.
struct JournalEntry {
  RepairEvent event;
  RepairOutcome outcome;

  friend bool operator==(const JournalEntry&, const JournalEntry&) = default;
};

/// Append-only log of the ECO deltas applied to one routed circuit — the
/// checkpoint format of the repair engine. The journal plus the seed
/// inputs (device spec, circuit, RouterOptions) IS the routed state:
/// replay_journal() routes the seed from scratch and re-applies every
/// event, reproducing the live result bit-for-bit and cross-checking each
/// recorded outcome against the recomputed one. That makes the journal a
/// recovery checkpoint (restart a dead service), an audit trail (every
/// degradation has the event that caused it on the line above), and a
/// regression artifact (a misbehaving event sequence is a text file).
///
/// Text format, line-oriented ("fpr-journal v1" header, then one
/// RepairEvent::describe line followed by its RepairOutcome::describe line
/// per entry; blank lines and `#` comments are skipped):
///   fpr-journal v1
///   repair wires=12,40 budget=50000
///   outcome cone=3 repaired=3 degraded=0 aborted=0 budget=1234 detour=4
class RepairJournal {
 public:
  void append(RepairEvent event, RepairOutcome outcome) {
    entries_.push_back(JournalEntry{std::move(event), std::move(outcome)});
  }

  const std::vector<JournalEntry>& entries() const { return entries_; }
  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  std::string serialize() const;
  static std::optional<RepairJournal> parse(const std::string& text);

  /// File round-trip (serialize/parse through a text file). save returns
  /// false on I/O failure; load returns nullopt on I/O failure or a
  /// malformed journal.
  bool save(const std::string& path) const;
  static std::optional<RepairJournal> load(const std::string& path);

  friend bool operator==(const RepairJournal&, const RepairJournal&) = default;

 private:
  std::vector<JournalEntry> entries_;
};

/// What replay_journal reconstructs from (seed circuit + journal).
struct JournalReplayResult {
  /// True when every recomputed outcome matched the journal's recorded one
  /// field-for-field. On false, `error` names the first divergence; the
  /// reconstructed state is still returned (replay runs to completion) so
  /// callers can diff it.
  bool ok = false;
  std::string error;

  Circuit circuit;        // seed circuit with every net delta applied
  RoutingResult result;   // the reconstructed routed state
  std::vector<RepairOutcome> outcomes;  // recomputed, one per journal entry
};

/// Reconstructs the routed state (seed circuit + journal): clears any
/// fault-event overlay on the device (spec faults stay installed — they are
/// part of the seed), routes the circuit from scratch with record_commits
/// forced on, then replays every journal entry through repair_route,
/// comparing each recomputed RepairOutcome against the recorded one. The
/// replay determinism contract: for a journal produced against the same
/// seed inputs, the reconstructed RoutingResult is bit-identical to the
/// live result the journal was recorded from.
JournalReplayResult replay_journal(Device& device, const Circuit& seed,
                                   const RouterOptions& options, const RepairJournal& journal);

}  // namespace fpr
