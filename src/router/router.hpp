#pragma once

#include <string_view>
#include <vector>

#include "core/metrics.hpp"
#include "core/route.hpp"
#include "fpga/device.hpp"
#include "graph/budget.hpp"
#include "netlist/netlist.hpp"

namespace fpr {

/// Congestion-resolution strategy of route_circuit.
enum class RouterMode {
  /// The paper's Section 5 router: exclusive wire ownership (routed nets
  /// consume their wire nodes), congestion penalties on tile siblings, and
  /// move-to-front re-ordering of failed nets between passes.
  kPaper,
  /// PathFinder-style negotiated congestion (router/negotiate.hpp,
  /// DESIGN.md §13): nets transiently share wires while present-overflow and
  /// accrued-history costs re-price the shared wires each pass, until no
  /// wire is over capacity. Two-pin nets first try cheap L/Z corridor
  /// pattern probes (router/patterns.hpp) before the full scoped engine.
  kNegotiated,
};

/// Printable name ("paper", "negotiated").
std::string_view router_mode_name(RouterMode mode);

/// Configuration of the paper's FPGA router (Section 5).
struct RouterOptions {
  /// Tree construction used per net (the paper's Tables 2/3 use IKMB;
  /// Table 4 compares IKMB vs PFA vs IDOM).
  Algorithm algorithm = Algorithm::kIkmb;

  /// Tree construction for nets flagged critical (CircuitNet::critical) —
  /// Section 2's mixed regime: shortest-paths trees for the timing-critical
  /// nets, wirelength-minimal trees for the rest.
  Algorithm critical_algorithm = Algorithm::kIdom;

  /// Candidate filtering for the iterated constructions; device graphs are
  /// large (|V| > 5000), so the corridor strategy with a cap is the default.
  RouteOptions route_options{CandidateStrategy::kCorridor, 48, 0};

  /// Feasibility threshold: "if a complete routing solution cannot be found
  /// in a user-specified maximum number of passes (we arbitrarily set this
  /// feasibility threshold to 20 passes), the router decides that the
  /// circuit is unroutable at that given channel width."
  int max_passes = 20;

  /// Move-to-front re-ordering of failed nets between passes.
  bool move_to_front = true;

  /// Give up before max_passes when the failure count has not improved for
  /// this many consecutive passes (the paper observes that successful
  /// routings converge in fewer than five passes, so a stalled width is
  /// almost certainly infeasible). 0 disables early stall detection.
  int stall_passes = 3;

  /// Extra weight added to edges of the remaining free wires in a channel
  /// tile each time one of that tile's wires is consumed — the "edge weights
  /// are updated to reflect the new congestion values" rule. 0 disables.
  double congestion_penalty = 0.25;

  /// Baseline mode standing in for CGE/SEGA/GBP: break each multi-pin net
  /// into independent source-sink two-pin connections, each routed by
  /// shortest path with no sharing (the strategy the paper credits its
  /// channel-width win against; see Fig. 15).
  bool decompose_two_pin = false;

  /// Rip-up-and-reroute attempts for a net that fails on a device with
  /// installed faults (Device::has_faults()). Each retry widens the search —
  /// full candidate set, unscoped oracle, arborescence fallback — under
  /// progressively relaxed congestion weighting (see fault_relief_backoff),
  /// because a defect often forces a detour straight through the corridor
  /// the congestion penalties were steering nets away from. 0 disables; on
  /// a fault-free device retries never happen (a failed deterministic
  /// search would just fail identically again).
  int fault_retries = 2;

  /// Geometric congestion-relief factor for fault retries: on retry r every
  /// edge weight w is temporarily remapped to 1 + (w - 1) * backoff^r, so
  /// accumulated congestion matters less and less while base wirelength
  /// still breaks ties. Exact originals are restored after each attempt.
  double fault_relief_backoff = 0.5;

  /// Deterministic work budget for the whole route_circuit call, measured
  /// in Dijkstra node expansions (heap pops) — never wall-clock, so a
  /// budget-aborted run is bit-identical on every machine and thread count.
  /// 0 = unlimited. When the budget runs out mid-circuit the router stops
  /// where it is: nets already routed stay routed (and committed), the
  /// in-flight and unattempted nets are marked NetStatus::kAbortedBudget,
  /// and the partial RoutingResult reports budget_exhausted.
  long long node_budget = 0;

  /// Worker threads for the net-parallel pass (the partition-tree wave
  /// scheduler, DESIGN.md §11): 0 = the shared pool (FPR_THREADS /
  /// hardware default), 1 = serial, >= 2 = a pool of that size. The result
  /// — device state, per-net records, pass count, move-to-front order,
  /// work_used — is bit-identical for every value; threads only change
  /// wall-clock time. Speculation engages only for configurations whose
  /// searches are read-confined (corridor candidates, whole-net trees, no
  /// node budget); anything else routes serially regardless of this knob.
  int threads = 0;

  /// Congestion-resolution mode. kPaper preserves the historical router
  /// bit-for-bit; kNegotiated switches route_circuit to the negotiated-
  /// congestion loop, which reads only the negotiate_* / pattern_route
  /// knobs below plus the shared algorithm/candidate/budget/thread options
  /// (move_to_front, congestion_penalty, fault_retries and max_passes are
  /// paper-mode machinery and are never consulted). Negotiated mode routes
  /// whole nets only: decompose_two_pin must stay false.
  RouterMode mode = RouterMode::kPaper;

  /// Negotiated mode: cap on rip-up-and-reroute passes (its feasibility
  /// threshold). Deliberately independent of max_passes so a shared options
  /// object keeps the paper-mode meaning of that field intact.
  int negotiate_passes = 32;

  /// Negotiated mode: present-overflow factor of the first pass and its
  /// geometric per-pass growth/cap. A wire at or over capacity charges
  /// present_factor * (occupancy + 1 - capacity) to every prospective new
  /// occupant; doubling each pass turns "sharing is cheap" exploration into
  /// "sharing is prohibitive" resolution. All dyadic, so repricing
  /// arithmetic is bit-exact on every platform.
  double present_factor = 0.5;
  double present_growth = 2.0;
  double present_factor_max = 4096.0;

  /// Negotiated mode: history cost accrued by every overflowed wire at the
  /// end of each pass. History never decays — it is the memory that steers
  /// nets away from chronically contested wires even when they are
  /// momentarily free.
  double history_increment = 0.25;

  /// Negotiated mode: attempt L/Z corridor pattern probes before the scoped
  /// engine on two-pin nets (router/patterns.hpp). Purely a fast path: a
  /// probe is accepted only when its corridor path is fault-free and
  /// congestion-free; anything else falls back to the engine.
  bool pattern_route = true;

  /// Record a per-net commit log (RoutingResult::commit_logs): the wire
  /// nodes each net consumed and — paper mode — the exact edges its commit
  /// penalized. Required by the incremental repair engine
  /// (router/repair.hpp): penalty applications depend on commit-time
  /// sibling activity, which later commits change, so exact rip-up needs
  /// the historical log, not a reconstruction from final state. Off by
  /// default (one-shot routes don't pay the bookkeeping).
  bool record_commits = false;
};

/// Per-net routing outcome classification — the graceful-degradation
/// contract. A plain bool cannot distinguish "needs one more wire" from
/// "physically impossible on this defective device" from "ran out of
/// budget", and those demand different reactions (widen the channel vs
/// accept the yield loss vs re-run with a bigger budget).
enum class NetStatus {
  kRouted,             // committed to the device
  kFailedCongestion,   // unroutable in the final pass, but reachable in a
                       // pristine device of this width: congestion/capacity
  kBlockedByFault,     // some terminal is unreachable even on an empty
                       // device with these faults: defect-blocked
  kAbortedBudget,      // the work budget expired before/while routing it
};

/// Printable name ("routed", "congestion", "fault", "budget").
std::string_view net_status_name(NetStatus status);

/// Per-net outcome. Pathlength metrics are measured at route time (on the
/// congested graph the net actually saw).
struct NetRouteResult {
  NetStatus status = NetStatus::kFailedCongestion;
  bool routed() const { return status == NetStatus::kRouted; }

  /// Fault-displacement context: how many rip-up retries the final pass
  /// spent on this net (> 0 on a routed net means it was rerouted around a
  /// defect), and — for kBlockedByFault — the first terminal the fault
  /// probe found unreachable.
  int retries = 0;
  NodeId blocked_sink = kInvalidNode;

  std::vector<EdgeId> edges;
  /// Metrics in the live routing metric (wirelength + congestion weighting)
  /// — what the router optimizes.
  Weight wirelength = 0;
  Weight max_pathlength = 0;
  Weight optimal_max_pathlength = 0;  // Dijkstra bound at route time
  /// Physical metrics (unit-length wire hops), independent of congestion
  /// weighting — what signal delay and resource usage actually are. Table 5
  /// compares algorithms on these.
  int physical_wirelength = 0;  // tree edge count
  int physical_max_path = 0;    // worst source-sink hop count
  int wire_nodes_used = 0;

  /// Field-for-field (bit-exact on the Weight fields) — the byte-stability
  /// and journal-replay contracts of the repair engine compare with this.
  friend bool operator==(const NetRouteResult&, const NetRouteResult&) = default;
};

/// What one net's commit did to the device — the undo record incremental
/// repair (router/repair.hpp) rips up with. Paper mode: `wires` are the
/// consumed wire nodes and `penalized` lists every edge the commit charged
/// congestion_penalty to, one entry per application (an edge can appear
/// more than once across a net's wires). Negotiated mode: `wires` only —
/// the final negotiated device state carries no penalties by contract.
struct NetCommitLog {
  std::vector<NodeId> wires;
  std::vector<EdgeId> penalized;

  friend bool operator==(const NetCommitLog&, const NetCommitLog&) = default;
};

/// Outcome of routing a whole circuit at one channel width.
struct RoutingResult {
  bool success = false;
  int passes = 0;
  int failed_nets = 0;  // in the final pass
  std::vector<NetRouteResult> nets;  // indexed like circuit.nets

  Weight total_wirelength = 0;
  int total_wire_nodes = 0;
  /// Sums over routed nets of max pathlength (for the Table 5 deltas).
  Weight total_max_pathlength = 0;
  Weight total_optimal_max_pathlength = 0;
  long total_physical_wirelength = 0;
  long total_physical_max_path = 0;

  // --- Graceful-degradation statistics (fault injection & work budgets) ---

  /// Routed nets that needed at least one fault retry: they exist in the
  /// final solution but took a detour around a defect.
  int nets_rerouted_around_faults = 0;
  int nets_blocked_by_fault = 0;  // final status kBlockedByFault
  int nets_aborted_budget = 0;    // final status kAbortedBudget
  /// Extra physical wirelength the fault-displaced nets pay versus routing
  /// each of them alone on a pristine fault-free device of the same width
  /// (per-net shortfalls clamp at zero — a lucky shorter route is not
  /// negative overhead).
  long detour_wirelength_overhead = 0;
  /// Node expansions actually spent (== RouterOptions::node_budget consumed
  /// when budget_exhausted, the true cost otherwise).
  long long work_used = 0;
  /// True when RouterOptions::node_budget expired before the router
  /// finished: `nets` is a partial-but-consistent solution (every kRouted
  /// net is committed and electrically disjoint; nothing is half-routed).
  bool budget_exhausted = false;

  /// The net order (indices into `nets`) the final pass routed in — the
  /// accumulated move-to-front permutation. Part of the determinism
  /// contract: bit-identical across RouterOptions::threads values.
  std::vector<std::size_t> net_order;

  /// RouterOptions::record_commits only: one log per net (indexed like
  /// `nets`, empty vectors for unrouted nets), recording what that net's
  /// final-pass commit did to the device. Empty when recording is off.
  std::vector<NetCommitLog> commit_logs;

  // --- Negotiated-mode convergence contract (DESIGN.md §13) ---

  /// Negotiated mode only: one entry per negotiation pass, holding the
  /// LOWEST total wire overflow of any pass so far (best-so-far, so the
  /// trend is monotone non-increasing by construction — the convergence
  /// oracle pins this). Converged runs end in 0. Always empty in paper
  /// mode.
  std::vector<int> overflow_trend;

  /// Negotiated mode: corridor pattern-probe accounting across the whole
  /// run (attempts >= accepts; an accept means the probe's path shipped as
  /// the net's route for that pass). Zero in paper mode.
  long long pattern_attempts = 0;
  long long pattern_accepts = 0;

  /// Fraction of nets routed — the yield measure of a degraded run (1.0 for
  /// an empty circuit).
  double routed_fraction() const {
    if (nets.empty()) return 1.0;
    int routed = 0;
    for (const auto& n : nets) routed += n.routed() ? 1 : 0;
    return static_cast<double>(routed) / static_cast<double>(nets.size());
  }
};

/// Routes every net of the circuit on the device. In paper mode (the
/// default), one net at a time: route -> commit (consume wire nodes, bump
/// congestion) -> next net; failed nets move to the front and the whole
/// circuit re-routes, up to max_passes passes. The device is reset()
/// between passes and left holding the final (successful or last-attempt)
/// state. RouterOptions::mode == kNegotiated dispatches to the
/// negotiated-congestion loop instead (router/negotiate.hpp); either way
/// the final device state satisfies exclusive wire ownership.
RoutingResult route_circuit(Device& device, const Circuit& circuit, const RouterOptions& options);

/// Incremental (ECO) repair of an existing RoutingResult after a live
/// delta — a FaultEvent or a set of changed/added/removed nets — lives in
/// router/repair.hpp (`repair_route`), with the append-only event journal
/// and checkpoint/replay in router/journal.hpp. Both modes are supported;
/// routes that will be repaired must be produced with
/// RouterOptions::record_commits = true.

}  // namespace fpr
