#pragma once

#include <vector>

#include "core/metrics.hpp"
#include "core/route.hpp"
#include "fpga/device.hpp"
#include "netlist/netlist.hpp"

namespace fpr {

/// Configuration of the paper's FPGA router (Section 5).
struct RouterOptions {
  /// Tree construction used per net (the paper's Tables 2/3 use IKMB;
  /// Table 4 compares IKMB vs PFA vs IDOM).
  Algorithm algorithm = Algorithm::kIkmb;

  /// Tree construction for nets flagged critical (CircuitNet::critical) —
  /// Section 2's mixed regime: shortest-paths trees for the timing-critical
  /// nets, wirelength-minimal trees for the rest.
  Algorithm critical_algorithm = Algorithm::kIdom;

  /// Candidate filtering for the iterated constructions; device graphs are
  /// large (|V| > 5000), so the corridor strategy with a cap is the default.
  RouteOptions route_options{CandidateStrategy::kCorridor, 48, 0};

  /// Feasibility threshold: "if a complete routing solution cannot be found
  /// in a user-specified maximum number of passes (we arbitrarily set this
  /// feasibility threshold to 20 passes), the router decides that the
  /// circuit is unroutable at that given channel width."
  int max_passes = 20;

  /// Move-to-front re-ordering of failed nets between passes.
  bool move_to_front = true;

  /// Give up before max_passes when the failure count has not improved for
  /// this many consecutive passes (the paper observes that successful
  /// routings converge in fewer than five passes, so a stalled width is
  /// almost certainly infeasible). 0 disables early stall detection.
  int stall_passes = 3;

  /// Extra weight added to edges of the remaining free wires in a channel
  /// tile each time one of that tile's wires is consumed — the "edge weights
  /// are updated to reflect the new congestion values" rule. 0 disables.
  double congestion_penalty = 0.25;

  /// Baseline mode standing in for CGE/SEGA/GBP: break each multi-pin net
  /// into independent source-sink two-pin connections, each routed by
  /// shortest path with no sharing (the strategy the paper credits its
  /// channel-width win against; see Fig. 15).
  bool decompose_two_pin = false;
};

/// Per-net outcome. Pathlength metrics are measured at route time (on the
/// congested graph the net actually saw).
struct NetRouteResult {
  bool routed = false;
  std::vector<EdgeId> edges;
  /// Metrics in the live routing metric (wirelength + congestion weighting)
  /// — what the router optimizes.
  Weight wirelength = 0;
  Weight max_pathlength = 0;
  Weight optimal_max_pathlength = 0;  // Dijkstra bound at route time
  /// Physical metrics (unit-length wire hops), independent of congestion
  /// weighting — what signal delay and resource usage actually are. Table 5
  /// compares algorithms on these.
  int physical_wirelength = 0;  // tree edge count
  int physical_max_path = 0;    // worst source-sink hop count
  int wire_nodes_used = 0;
};

/// Outcome of routing a whole circuit at one channel width.
struct RoutingResult {
  bool success = false;
  int passes = 0;
  int failed_nets = 0;  // in the final pass
  std::vector<NetRouteResult> nets;  // indexed like circuit.nets

  Weight total_wirelength = 0;
  int total_wire_nodes = 0;
  /// Sums over routed nets of max pathlength (for the Table 5 deltas).
  Weight total_max_pathlength = 0;
  Weight total_optimal_max_pathlength = 0;
  long total_physical_wirelength = 0;
  long total_physical_max_path = 0;
};

/// Routes every net of the circuit on the device, one net at a time:
/// route -> commit (consume wire nodes, bump congestion) -> next net;
/// failed nets move to the front and the whole circuit re-routes, up to
/// max_passes passes. The device is reset() between passes and left holding
/// the final (successful or last-attempt) state.
RoutingResult route_circuit(Device& device, const Circuit& circuit, const RouterOptions& options);

}  // namespace fpr
