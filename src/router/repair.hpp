#pragma once

#include <atomic>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "router/router.hpp"

namespace fpr {

namespace testhooks {

/// When set, repair_cone() skips the congestion-neighbor expansion round —
/// the cone contains only the nets whose committed resources the event's
/// dead elements hit directly, never the nets owning a tile sibling of a
/// dead wire. This is the seeded "cone misses congestion-dependent
/// neighbors" bug the repair mutation-smoke test plants: the repaired state
/// is still electrically legal, so only the Oracle::kRepair cone-contract
/// re-derivation can catch it. Never set outside tests.
extern std::atomic<bool> repair_skip_cone_neighbor;

}  // namespace testhooks

/// One ECO delta against a routed circuit — the unit repair_route consumes
/// and the repair journal logs. Combines a live fault event (elements that
/// died mid-service) with netlist changes (changed pin sets, new nets,
/// removed nets) and a per-event deterministic work budget.
///
/// Removal keeps net indices stable: a removed net's sinks are cleared, so
/// it degenerates to a single-block net (trivially routed, zero wires) and
/// every other index keeps meaning across events — the property that lets
/// a journal of many events replay against one result vector.
struct RepairEvent {
  /// Elements that died (applied via Device::apply_fault_event).
  FaultEvent faults;

  /// Nets whose pin set changed: index into circuit.nets -> replacement.
  std::vector<std::pair<int, CircuitNet>> changed;

  /// New nets, appended to circuit.nets in order.
  std::vector<CircuitNet> added;

  /// Nets to remove (indices into circuit.nets; sinks cleared in place).
  std::vector<int> removed;

  /// Deterministic work budget for THIS event's re-routes, in Dijkstra
  /// node expansions (same unit as RouterOptions::node_budget; never
  /// wall-clock). 0 = unlimited.
  long long budget = 0;

  bool empty() const {
    return faults.empty() && changed.empty() && added.empty() && removed.empty();
  }

  /// One-line `key=value` serialization, the journal format. Empty
  /// categories are omitted; a net spells `[c%]x.y:x.y:...` (critical
  /// marker, source pin, then sinks) and lists join with `;`:
  ///   repair wires=12,40 edges=7 changed=2@0.1:3.4 added=c%0.0:2.2 removed=5 budget=50000
  std::string describe() const;
  static std::optional<RepairEvent> parse(const std::string& line);

  friend bool operator==(const RepairEvent&, const RepairEvent&) = default;
};

/// Per-event repair summary — what a daemon reports per delta and what the
/// journal records for replay cross-checking.
struct RepairOutcome {
  int cone_nets = 0;   // nets ripped up and re-attempted (delta + neighbors)
  int repaired = 0;    // cone nets routed after the event
  int degraded = 0;    // cone nets ending kBlockedByFault / kFailedCongestion
  int aborted = 0;     // cone nets ending kAbortedBudget
  long long budget_used = 0;  // node expansions this event spent
  /// Extra physical wirelength the surviving cone nets pay versus their
  /// pre-event routes (per-net shortfalls clamp at zero).
  long detour_overhead = 0;

  bool clean() const { return degraded == 0 && aborted == 0; }

  /// One-line serialization (every key always present — outcomes are
  /// compared field-for-field by journal replay):
  ///   outcome cone=3 repaired=3 degraded=0 aborted=0 budget=1234 detour=4
  std::string describe() const;
  static std::optional<RepairOutcome> parse(const std::string& line);

  friend bool operator==(const RepairOutcome&, const RepairOutcome&) = default;
};

/// The fault-affected cone of `faults` against a routed result: indices
/// (ascending, unique) of the nets that must re-route. A net is in the
/// cone when
///  (a) its committed wires contain a dead wire, or its committed edges
///      contain a dead edge (direct hit), or
///  (b) one bounded expansion round: it owns a tile sibling of a dead wire
///      — the congestion-dependent neighbors. Killing a wire re-prices its
///      channel tile (the penalties the dead wire's commit charged, and
///      the capacity its siblings now compete for), so sibling owners
///      re-route under the post-event landscape instead of a stale one.
/// Dead edges get no expansion round: a dead switch removes a connection
/// without changing any channel tile's capacity.
///
/// `result.commit_logs` must be populated (record_commits). Net-delta cone
/// members (changed/added/removed) are unioned in by repair_route itself.
std::vector<std::size_t> repair_cone(const Device& device, const RoutingResult& result,
                                     const FaultEvent& faults);

/// Applies `event` to (device, circuit, result) in place and repairs: the
/// fault overlay lands on the device (Device::apply_fault_event), the net
/// deltas land on the circuit, the affected cone (repair_cone + the
/// changed/added/removed nets) is ripped up EXACTLY — penalties subtracted
/// application-for-application from the recorded commit logs, wires
/// restored unless an event killed them — and re-routed one net at a time
/// in the result's established net order under the event's work budget,
/// through the same per-net code path a full routing pass uses (retry
/// ladder included in paper mode; negotiated mode re-routes with zero
/// penalties and zero retries, preserving its mode contract).
///
/// Every net outside the cone is byte-stable: its record, its committed
/// wires, and every penalty it charged are untouched. The result's
/// degradation statistics and totals are recounted afterwards, so the
/// repaired RoutingResult replays clean through the feasibility oracle
/// with the device's cumulative fault overlay installed.
///
/// Requires result.commit_logs sized like circuit.nets (route with
/// RouterOptions::record_commits = true) — FPR_CHECKed, as are event net
/// indices and pin coordinates. Works in both router modes; determinism is
/// trivial at any RouterOptions::threads (repair re-routes serially).
RepairOutcome repair_route(Device& device, Circuit& circuit, RoutingResult& result,
                           const RepairEvent& event, const RouterOptions& options);

}  // namespace fpr
