#include "router/repair.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <sstream>

#include "core/contract.hpp"
#include "core/metrics.hpp"
#include "graph/budget.hpp"
#include "router/internal.hpp"

namespace fpr {

namespace testhooks {
std::atomic<bool> repair_skip_cone_neighbor{false};
}  // namespace testhooks

namespace {

// --- One-line serialization helpers (journal format) -----------------------
//
// Same defensive posture as FaultSpec::parse / text_io readers: a malformed
// line returns nullopt, never crashes — journals are untrusted files.

bool parse_u64(const std::string& text, std::uint64_t& out) {
  if (text.empty()) return false;
  std::uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
    if (value > (~std::uint64_t{0} - static_cast<std::uint64_t>(c - '0')) / 10) return false;
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  out = value;
  return true;
}

bool parse_i32(const std::string& text, std::int32_t& out) {
  std::uint64_t value = 0;
  if (!parse_u64(text, value)) return false;
  if (value > static_cast<std::uint64_t>(std::numeric_limits<std::int32_t>::max())) return false;
  out = static_cast<std::int32_t>(value);
  return true;
}

bool parse_ll(const std::string& text, long long& out) {
  std::uint64_t value = 0;
  if (!parse_u64(text, value)) return false;
  if (value > static_cast<std::uint64_t>(std::numeric_limits<long long>::max())) return false;
  out = static_cast<long long>(value);
  return true;
}

std::string format_ids(const std::vector<std::int32_t>& ids) {
  std::ostringstream os;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (i > 0) os << ',';
    os << ids[i];
  }
  return os.str();
}

bool parse_id_list(const std::string& text, std::vector<std::int32_t>& out) {
  out.clear();
  if (text.empty()) return false;
  std::size_t pos = 0;
  while (true) {
    const std::size_t comma = text.find(',', pos);
    const std::string token =
        comma == std::string::npos ? text.substr(pos) : text.substr(pos, comma - pos);
    std::int32_t value = 0;
    if (!parse_i32(token, value)) return false;
    out.push_back(value);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return true;
}

/// `[c%]x.y(:x.y)*` — critical marker, source pin, then the sinks.
std::string format_net(const CircuitNet& net) {
  std::ostringstream os;
  if (net.critical) os << "c%";
  os << net.source.x << '.' << net.source.y;
  for (const PinRef& p : net.sinks) os << ':' << p.x << '.' << p.y;
  return os.str();
}

bool parse_pin(const std::string& token, PinRef& out) {
  const std::size_t dot = token.find('.');
  if (dot == std::string::npos) return false;
  return parse_i32(token.substr(0, dot), out.x) && parse_i32(token.substr(dot + 1), out.y);
}

bool parse_net(std::string text, CircuitNet& out) {
  out = CircuitNet{};
  if (text.rfind("c%", 0) == 0) {
    out.critical = true;
    text = text.substr(2);
  }
  std::size_t pos = 0;
  bool first = true;
  while (true) {
    const std::size_t colon = text.find(':', pos);
    const std::string token =
        colon == std::string::npos ? text.substr(pos) : text.substr(pos, colon - pos);
    PinRef pin;
    if (!parse_pin(token, pin)) return false;
    if (first) {
      out.source = pin;
      first = false;
    } else {
      out.sinks.push_back(pin);
    }
    if (colon == std::string::npos) break;
    pos = colon + 1;
  }
  return !first;
}

/// Invokes `fn(piece)` for every `;`-separated piece; false when any piece
/// is empty or fn rejects it.
template <typename Fn>
bool for_each_piece(const std::string& text, Fn&& fn) {
  if (text.empty()) return false;
  std::size_t pos = 0;
  while (true) {
    const std::size_t sep = text.find(';', pos);
    const std::string piece =
        sep == std::string::npos ? text.substr(pos) : text.substr(pos, sep - pos);
    if (piece.empty() || !fn(piece)) return false;
    if (sep == std::string::npos) break;
    pos = sep + 1;
  }
  return true;
}

}  // namespace

std::string RepairEvent::describe() const {
  std::ostringstream os;
  os << "repair";
  if (!faults.dead_wires.empty()) os << " wires=" << format_ids(faults.dead_wires);
  if (!faults.dead_edges.empty()) os << " edges=" << format_ids(faults.dead_edges);
  if (!changed.empty()) {
    os << " changed=";
    for (std::size_t i = 0; i < changed.size(); ++i) {
      if (i > 0) os << ';';
      os << changed[i].first << '@' << format_net(changed[i].second);
    }
  }
  if (!added.empty()) {
    os << " added=";
    for (std::size_t i = 0; i < added.size(); ++i) {
      if (i > 0) os << ';';
      os << format_net(added[i]);
    }
  }
  if (!removed.empty()) os << " removed=" << format_ids(removed);
  if (budget > 0) os << " budget=" << budget;
  return os.str();
}

std::optional<RepairEvent> RepairEvent::parse(const std::string& line) {
  std::istringstream is(line);
  std::string tag;
  if (!(is >> tag) || tag != "repair") return std::nullopt;
  RepairEvent event;
  std::string token;
  while (is >> token) {
    const auto eq = token.find('=');
    if (eq == std::string::npos) return std::nullopt;
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    bool ok = false;
    if (key == "wires") {
      ok = parse_id_list(value, event.faults.dead_wires);
    } else if (key == "edges") {
      ok = parse_id_list(value, event.faults.dead_edges);
    } else if (key == "changed") {
      ok = for_each_piece(value, [&](const std::string& piece) {
        const std::size_t at = piece.find('@');
        if (at == std::string::npos) return false;
        int idx = 0;
        CircuitNet net;
        if (!parse_i32(piece.substr(0, at), idx)) return false;
        if (!parse_net(piece.substr(at + 1), net)) return false;
        event.changed.emplace_back(idx, std::move(net));
        return true;
      });
    } else if (key == "added") {
      ok = for_each_piece(value, [&](const std::string& piece) {
        CircuitNet net;
        if (!parse_net(piece, net)) return false;
        event.added.push_back(std::move(net));
        return true;
      });
    } else if (key == "removed") {
      ok = parse_id_list(value, event.removed);
    } else if (key == "budget") {
      ok = parse_ll(value, event.budget);
    } else {
      // Unknown keys are accepted (and ignored) so the journal format can
      // grow without breaking old replay tooling.
      ok = true;
    }
    if (!ok) return std::nullopt;
  }
  event.faults.normalize();
  return event;
}

std::string RepairOutcome::describe() const {
  std::ostringstream os;
  os << "outcome cone=" << cone_nets << " repaired=" << repaired << " degraded=" << degraded
     << " aborted=" << aborted << " budget=" << budget_used << " detour=" << detour_overhead;
  return os.str();
}

std::optional<RepairOutcome> RepairOutcome::parse(const std::string& line) {
  std::istringstream is(line);
  std::string tag;
  if (!(is >> tag) || tag != "outcome") return std::nullopt;
  RepairOutcome outcome;
  std::string token;
  while (is >> token) {
    const auto eq = token.find('=');
    if (eq == std::string::npos) return std::nullopt;
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    bool ok = false;
    long long ll = 0;
    if (key == "cone") {
      ok = parse_i32(value, outcome.cone_nets);
    } else if (key == "repaired") {
      ok = parse_i32(value, outcome.repaired);
    } else if (key == "degraded") {
      ok = parse_i32(value, outcome.degraded);
    } else if (key == "aborted") {
      ok = parse_i32(value, outcome.aborted);
    } else if (key == "budget") {
      ok = parse_ll(value, outcome.budget_used);
    } else if (key == "detour") {
      ok = parse_ll(value, ll);
      outcome.detour_overhead = static_cast<long>(ll);
    } else {
      ok = true;  // same growth policy as the event line
    }
    if (!ok) return std::nullopt;
  }
  return outcome;
}

std::vector<std::size_t> repair_cone(const Device& device, const RoutingResult& result,
                                     const FaultEvent& faults) {
  FPR_CHECK(result.commit_logs.size() == result.nets.size(),
            "repair_cone: result carries " << result.commit_logs.size() << " commit logs for "
                                           << result.nets.size()
                                           << " nets — route with record_commits");
  std::vector<char> in_cone(result.nets.size(), 0);
  if (!faults.empty()) {
    // Direct hits: committed wires vs dead wires, committed edges vs dead
    // edges. Commit logs give the wires (exactly what the net consumed);
    // the edge list is the committed route itself.
    for (std::size_t i = 0; i < result.nets.size(); ++i) {
      for (const NodeId w : result.commit_logs[i].wires) {
        if (faults.wire_faulted(w)) {
          in_cone[i] = 1;
          break;
        }
      }
      if (in_cone[i] == 0 && !faults.dead_edges.empty()) {
        for (const EdgeId e : result.nets[i].edges) {
          if (faults.edge_faulted(e)) {
            in_cone[i] = 1;
            break;
          }
        }
      }
    }
    // Bounded expansion: the congestion-dependent neighbors. A dead wire
    // re-prices its channel tile (the penalties its own commit charged
    // vanish with it, and its siblings now compete for one track fewer),
    // so the nets owning a tile sibling re-route under the post-event
    // landscape. Dead edges get no expansion round: a dead switch removes
    // a connection without changing any tile's capacity.
    if (!faults.dead_wires.empty() &&
        !testhooks::repair_skip_cone_neighbor.load(std::memory_order_relaxed)) {
      std::vector<std::int32_t> owner(static_cast<std::size_t>(device.graph().node_count()),
                                      -1);
      for (std::size_t i = 0; i < result.commit_logs.size(); ++i) {
        for (const NodeId w : result.commit_logs[i].wires) {
          owner[static_cast<std::size_t>(w)] = static_cast<std::int32_t>(i);
        }
      }
      for (const NodeId w : faults.dead_wires) {
        if (!device.is_wire(w)) continue;  // apply_fault_event FPR_CHECKs; stay lenient here
        device.for_each_tile_sibling(w, [&](NodeId s) {
          const std::int32_t net = owner[static_cast<std::size_t>(s)];
          if (net >= 0) in_cone[static_cast<std::size_t>(net)] = 1;
        });
      }
    }
  }
  std::vector<std::size_t> cone;
  for (std::size_t i = 0; i < in_cone.size(); ++i) {
    if (in_cone[i] != 0) cone.push_back(i);
  }
  return cone;
}

RepairOutcome repair_route(Device& device, Circuit& circuit, RoutingResult& result,
                           const RepairEvent& event, const RouterOptions& options) {
  FPR_CHECK(result.nets.size() == circuit.nets.size(),
            "repair_route: result records " << result.nets.size() << " nets, circuit has "
                                            << circuit.nets.size());
  FPR_CHECK(result.commit_logs.size() == circuit.nets.size(),
            "repair_route: result carries " << result.commit_logs.size() << " commit logs for "
                                            << circuit.nets.size()
                                            << " nets — route with record_commits");
  counters().repair_events.fetch_add(1, std::memory_order_relaxed);

  const auto check_pins = [&](const CircuitNet& net) {
    const auto on_array = [&](const PinRef& p) {
      return p.x >= 0 && p.x < circuit.cols && p.y >= 0 && p.y < circuit.rows;
    };
    FPR_CHECK(on_array(net.source), "repair_route: net source (" << net.source.x << ", "
                                                                 << net.source.y
                                                                 << ") off the array");
    for (const PinRef& p : net.sinks) {
      FPR_CHECK(on_array(p), "repair_route: net sink (" << p.x << ", " << p.y
                                                        << ") off the array");
    }
  };
  const int existing = static_cast<int>(circuit.nets.size());
  for (const auto& [idx, net] : event.changed) {
    FPR_CHECK(idx >= 0 && idx < existing,
              "repair_route: changed index " << idx << " outside " << existing << " nets");
    check_pins(net);
  }
  for (const int idx : event.removed) {
    FPR_CHECK(idx >= 0 && idx < existing,
              "repair_route: removed index " << idx << " outside " << existing << " nets");
  }
  for (const CircuitNet& net : event.added) check_pins(net);

  // --- 1. The cone: fault-affected nets (computed against the pre-event
  // state) unioned with the net-delta members. ---
  std::vector<char> in_cone(circuit.nets.size() + event.added.size(), 0);
  for (const std::size_t i : repair_cone(device, result, event.faults)) in_cone[i] = 1;
  for (const auto& [idx, net] : event.changed) in_cone[static_cast<std::size_t>(idx)] = 1;
  for (const int idx : event.removed) in_cone[static_cast<std::size_t>(idx)] = 1;

  // --- 2. Net deltas onto the circuit/result (indices stay stable:
  // removal clears sinks, additions append). ---
  for (const auto& [idx, net] : event.changed) circuit.nets[static_cast<std::size_t>(idx)] = net;
  for (const int idx : event.removed) circuit.nets[static_cast<std::size_t>(idx)].sinks.clear();
  for (const CircuitNet& net : event.added) {
    in_cone[circuit.nets.size()] = 1;
    circuit.nets.push_back(net);
    result.nets.emplace_back();
    result.commit_logs.emplace_back();
    result.net_order.push_back(circuit.nets.size() - 1);
  }

  // --- 3. The fault overlay lands on the live device: dead free elements
  // are removed in place, dead owned elements are recorded (their nets are
  // in the cone and about to release them). ---
  device.apply_fault_event(event.faults);

  // --- 4. Exact rip-up of the cone, from the recorded commit logs:
  // penalties subtracted application-for-application (dyadic, so the value
  // is restored bit-exactly regardless of inter-net order), wires restored
  // unless the event overlay killed them. Everything outside the cone is
  // untouched — byte-stability by construction. ---
  Graph& g = device.graph();
  const double penalty = options.congestion_penalty;
  RepairOutcome outcome;
  struct PreEvent {
    bool routed = false;
    int physical_wirelength = 0;
  };
  std::vector<std::size_t> cone;
  for (std::size_t i = 0; i < in_cone.size(); ++i) {
    if (in_cone[i] != 0) cone.push_back(i);
  }
  std::vector<PreEvent> before(cone.size());
  for (std::size_t k = 0; k < cone.size(); ++k) {
    const std::size_t i = cone[k];
    before[k] = {result.nets[i].routed(), result.nets[i].physical_wirelength};
    NetCommitLog& log = result.commit_logs[i];
    for (auto it = log.penalized.rbegin(); it != log.penalized.rend(); ++it) {
      g.add_edge_weight(*it, -penalty);
    }
    for (auto it = log.wires.rbegin(); it != log.wires.rend(); ++it) {
      if (!device.event_wire_faulted(*it)) g.restore_node(*it);
    }
    log = NetCommitLog{};
    result.nets[i] = NetRouteResult{};
    counters().repair_nets_ripped.fetch_add(1, std::memory_order_relaxed);
  }
  outcome.cone_nets = static_cast<int>(cone.size());

  // --- 5. Re-route the cone, serially, in the result's established net
  // order (so a repaired net sees exactly the device state its position
  // implies — and the repair is bit-identical at any threads value),
  // under the event's own deterministic budget. ---
  RouterOptions repair_options = options;
  if (options.mode == RouterMode::kNegotiated) {
    // Mode contract: the negotiated final state carries no penalties and
    // reports zero retries, so cone nets re-route penalty-free with the
    // ladder off (negotiate_paper_boundary_test pins the relief counter).
    repair_options.congestion_penalty = 0.0;
    repair_options.decompose_two_pin = false;
  }
  const bool faulty = device.has_faults() || device.has_fault_events();
  const int fault_retries = options.mode == RouterMode::kPaper && faulty
                                ? std::max(0, options.fault_retries)
                                : 0;
  WorkBudget budget{event.budget};
  std::vector<char> pending = in_cone;
  const auto repair_net = [&](std::size_t idx) {
    if (pending[idx] == 0) return;
    pending[idx] = 0;
    NetRouteResult& record = result.nets[idx];
    if (budget.exhausted()) {
      record.status = NetStatus::kAbortedBudget;
      return;
    }
    router_internal::route_single_net(device, circuit, repair_options, budget, fault_retries,
                                      &result.commit_logs, idx, record);
    if (record.routed()) {
      counters().repair_nets_rerouted.fetch_add(1, std::memory_order_relaxed);
    }
  };
  for (const std::size_t idx : result.net_order) {
    if (idx < pending.size()) repair_net(idx);
  }
  // Insurance for results whose net_order is not a full permutation (e.g.
  // a zero-pass route): any cone net it missed repairs in index order.
  for (std::size_t idx = 0; idx < pending.size(); ++idx) repair_net(idx);

  // --- 6. Outcome + full recount of the result's summary fields, so the
  // repaired RoutingResult replays clean through the feasibility oracle. ---
  for (std::size_t k = 0; k < cone.size(); ++k) {
    const NetRouteResult& record = result.nets[cone[k]];
    if (record.routed()) {
      ++outcome.repaired;
      if (before[k].routed && record.physical_wirelength > before[k].physical_wirelength) {
        outcome.detour_overhead += record.physical_wirelength - before[k].physical_wirelength;
      }
    } else if (record.status == NetStatus::kAbortedBudget) {
      ++outcome.aborted;
    } else {
      ++outcome.degraded;
    }
  }
  outcome.budget_used = budget.used;
  result.work_used += budget.used;

  result.failed_nets = 0;
  for (const NetRouteResult& record : result.nets) {
    if (!record.routed()) ++result.failed_nets;
  }
  result.success = result.failed_nets == 0;
  if (!result.success && faulty) {
    router_internal::classify_fault_blocked(device, circuit, result);
  }
  result.nets_rerouted_around_faults = 0;
  result.nets_blocked_by_fault = 0;
  result.nets_aborted_budget = 0;
  result.detour_wirelength_overhead = 0;
  router_internal::accumulate_degradation_stats(device, circuit, options, result);
  result.total_wirelength = 0;
  result.total_wire_nodes = 0;
  result.total_max_pathlength = 0;
  result.total_optimal_max_pathlength = 0;
  result.total_physical_wirelength = 0;
  result.total_physical_max_path = 0;
  router_internal::accumulate_totals(result);
  result.budget_exhausted = result.nets_aborted_budget > 0;

  // classify_fault_blocked may have reclassified degraded cone nets; keep
  // the outcome's split consistent with the final statuses.
  outcome.degraded = 0;
  outcome.aborted = 0;
  for (const std::size_t i : cone) {
    const NetRouteResult& record = result.nets[i];
    if (record.routed()) continue;
    if (record.status == NetStatus::kAbortedBudget) {
      ++outcome.aborted;
    } else {
      ++outcome.degraded;
    }
  }
  return outcome;
}

}  // namespace fpr
