#include "router/baseline.hpp"

namespace fpr {

RouterOptions two_pin_baseline_options() {
  RouterOptions options;
  options.decompose_two_pin = true;
  // The tree algorithm is unused in decomposition mode, but keep the rest of
  // the loop (passes, move-to-front, congestion) identical to the Steiner
  // router so the comparison isolates the decomposition choice.
  return options;
}

}  // namespace fpr
