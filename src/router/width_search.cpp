#include "router/width_search.hpp"

namespace fpr {

WidthSearchResult find_min_channel_width(const ArchSpec& base, const Circuit& circuit,
                                         const RouterOptions& router_options,
                                         const WidthSearchOptions& search_options) {
  WidthSearchResult result;
  auto try_width = [&](int w) -> RoutingResult {
    Device device(base.with_width(w));
    RoutingResult r = route_circuit(device, circuit, router_options);
    result.attempts.emplace_back(w, r.success);
    return r;
  };

  int hi = search_options.max_width;
  RoutingResult at_hi = try_width(hi);
  if (!at_hi.success) return result;  // unroutable even at the widest device
  result.min_width = hi;
  result.at_min_width = std::move(at_hi);

  int lo = search_options.min_width;
  // Invariant: `result.min_width` routes; everything below `lo` untested or
  // known to fail.
  while (lo < result.min_width) {
    const int mid = lo + (result.min_width - lo) / 2;
    RoutingResult r = try_width(mid);
    if (r.success) {
      result.min_width = mid;
      result.at_min_width = std::move(r);
    } else {
      lo = mid + 1;
    }
  }
  return result;
}

}  // namespace fpr
