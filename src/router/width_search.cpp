#include "router/width_search.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <memory>
#include <set>

#include "core/parallel.hpp"

namespace fpr {

std::string_view width_search_status_name(WidthSearchStatus status) {
  switch (status) {
    case WidthSearchStatus::kEmptyRange: return "empty-range";
    case WidthSearchStatus::kFound: return "found";
    case WidthSearchStatus::kUnroutable: return "unroutable";
    case WidthSearchStatus::kBudgetExhausted: return "budget";
  }
  return "?";
}

namespace {

WidthProbe probe_of(int width, const RoutingResult& r) {
  return WidthProbe{width, r.success, r.budget_exhausted};
}

/// Fills WidthSearchResult::undecided_probes from the recorded trace. A
/// successful probe is decided even when it also hit the budget (a partial
/// route that still closed is an answer); only "failed AND budget-aborted"
/// is genuinely unknown.
void count_undecided(WidthSearchResult& result) {
  result.undecided_probes = 0;
  for (const WidthProbe& p : result.attempts) {
    if (!p.success && p.budget_aborted) ++result.undecided_probes;
  }
}

/// Replays the serial binary-search decision sequence over memoized
/// per-width outcomes, recording attempts in the serial order. Returns
/// false (leaving `result` half-filled) when it reaches a width the memo
/// does not know yet; the caller then routes more widths and retries.
bool replay_serial_search(const std::map<int, RoutingResult>& memo, int lo0, int hi,
                          WidthSearchResult& result) {
  result.attempts.clear();
  result.min_width = -1;
  result.status = WidthSearchStatus::kEmptyRange;
  auto it = memo.find(hi);
  if (it == memo.end()) return false;
  result.attempts.push_back(probe_of(hi, it->second));
  if (!it->second.success) {
    // Unroutable even at the widest device — or undecided, when the widest
    // probe burned its whole budget without an answer.
    result.status = it->second.budget_exhausted ? WidthSearchStatus::kBudgetExhausted
                                                : WidthSearchStatus::kUnroutable;
    return true;
  }
  int cur = hi;
  int lo = lo0;
  while (lo < cur) {
    const int mid = lo + (cur - lo) / 2;
    it = memo.find(mid);
    if (it == memo.end()) return false;
    result.attempts.push_back(probe_of(mid, it->second));
    if (it->second.success) {
      cur = mid;
    } else {
      lo = mid + 1;
    }
  }
  result.min_width = cur;
  result.status = WidthSearchStatus::kFound;
  return true;
}

/// Widths the serial search could probe next, given what `memo` already
/// knows: BFS over the binary search's two-outcome decision tree, following
/// known branches silently and emitting unknown widths, up to `limit`
/// candidates. BFS order front-loads the probes nearest the serial path, so
/// a wave of `limit` threads covers the next ~log2(limit) serial decisions
/// in one concurrent round.
std::vector<int> speculate_widths(const std::map<int, RoutingResult>& memo, int lo0, int hi,
                                  std::size_t limit) {
  struct Interval {
    int lo, cur;  // cur assumed-routable; widths below lo assumed-failing
  };
  std::vector<int> out;
  std::set<int> emitted;
  std::deque<Interval> frontier;

  const auto top = memo.find(hi);
  if (top == memo.end()) {
    out.push_back(hi);
    emitted.insert(hi);
    frontier.push_back({lo0, hi});  // the hi-fails branch ends the search
  } else if (!top->second.success) {
    return out;  // search already decided: unroutable
  } else {
    frontier.push_back({lo0, hi});
  }

  while (!frontier.empty() && out.size() < limit) {
    const Interval s = frontier.front();
    frontier.pop_front();
    if (s.lo >= s.cur) continue;  // this branch's search has terminated
    const int mid = s.lo + (s.cur - s.lo) / 2;
    const auto known = memo.find(mid);
    if (known != memo.end()) {
      frontier.push_back(known->second.success ? Interval{s.lo, mid}
                                               : Interval{mid + 1, s.cur});
      continue;
    }
    if (emitted.insert(mid).second) out.push_back(mid);
    frontier.push_back({s.lo, mid});
    frontier.push_back({mid + 1, s.cur});
  }
  return out;
}

}  // namespace

WidthSearchResult find_min_channel_width(const ArchSpec& base, const Circuit& circuit,
                                         const RouterOptions& router_options,
                                         const WidthSearchOptions& search_options) {
  WidthSearchResult result;
  const int lo0 = std::max(search_options.min_width, 1);
  const int hi = search_options.max_width;
  if (hi < 1 || lo0 > hi) return result;  // degenerate range: nothing to probe

  const auto route_width = [&](int w) -> RoutingResult {
    Device device(base.with_width(w));
    if (search_options.faults.has_value() && search_options.faults->any()) {
      device.install_faults(*search_options.faults);
    }
    RouterOptions opts = router_options;
    if (search_options.node_budget_per_probe > 0) {
      opts.node_budget = search_options.node_budget_per_probe;
    }
    return route_circuit(device, circuit, opts);
  };

  const int threads =
      search_options.threads > 0 ? search_options.threads : ThreadPool::shared().size();

  if (threads <= 1) {
    // Serial reference path — the contract the parallel path reproduces.
    auto try_width = [&](int w) -> RoutingResult {
      RoutingResult r = route_width(w);
      result.attempts.push_back(probe_of(w, r));
      return r;
    };
    RoutingResult at_hi = try_width(hi);
    if (!at_hi.success) {  // unroutable (or budget-undecided) at the widest device
      result.status = at_hi.budget_exhausted ? WidthSearchStatus::kBudgetExhausted
                                             : WidthSearchStatus::kUnroutable;
      count_undecided(result);
      return result;
    }
    result.status = WidthSearchStatus::kFound;
    result.min_width = hi;
    result.at_min_width = std::move(at_hi);
    int lo = lo0;
    // Invariant: `result.min_width` routes; everything below `lo` untested
    // or known to fail.
    while (lo < result.min_width) {
      const int mid = lo + (result.min_width - lo) / 2;
      RoutingResult r = try_width(mid);
      if (r.success) {
        result.min_width = mid;
        result.at_min_width = std::move(r);
      } else {
        lo = mid + 1;
      }
    }
    count_undecided(result);
    return result;
  }

  // Speculative parallel search: route waves of candidate widths
  // concurrently (one Device per probe, no shared router state), memoize
  // the per-width outcomes — deterministic functions of the width — and
  // replay the serial decision sequence over the memo. Monotone
  // routability makes most speculative probes useful; the replay keeps the
  // recorded trace and the chosen width bit-identical to the serial path
  // regardless.
  PoolLease lease(threads);

  std::map<int, RoutingResult> memo;
  while (!replay_serial_search(memo, lo0, hi, result)) {
    const std::vector<int> widths =
        speculate_widths(memo, lo0, hi, static_cast<std::size_t>(threads));
    std::vector<RoutingResult> outcomes(widths.size());
    lease.pool().parallel_for(widths.size(),
                              [&](std::size_t i) { outcomes[i] = route_width(widths[i]); });
    for (std::size_t i = 0; i < widths.size(); ++i) {
      memo.emplace(widths[i], std::move(outcomes[i]));
    }
  }
  if (result.min_width > 0) result.at_min_width = std::move(memo.at(result.min_width));
  count_undecided(result);
  return result;
}

}  // namespace fpr
