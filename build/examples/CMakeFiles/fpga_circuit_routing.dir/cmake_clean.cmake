file(REMOVE_RECURSE
  "CMakeFiles/fpga_circuit_routing.dir/fpga_circuit_routing.cpp.o"
  "CMakeFiles/fpga_circuit_routing.dir/fpga_circuit_routing.cpp.o.d"
  "fpga_circuit_routing"
  "fpga_circuit_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpga_circuit_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
