# Empty compiler generated dependencies file for fpga_circuit_routing.
# This may be replaced when dependencies are built.
