# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fpga_circuit_routing.
