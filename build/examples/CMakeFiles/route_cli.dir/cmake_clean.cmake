file(REMOVE_RECURSE
  "CMakeFiles/route_cli.dir/route_cli.cpp.o"
  "CMakeFiles/route_cli.dir/route_cli.cpp.o.d"
  "route_cli"
  "route_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/route_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
