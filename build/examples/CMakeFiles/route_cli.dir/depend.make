# Empty dependencies file for route_cli.
# This may be replaced when dependencies are built.
