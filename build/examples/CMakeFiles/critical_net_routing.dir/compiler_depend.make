# Empty compiler generated dependencies file for critical_net_routing.
# This may be replaced when dependencies are built.
