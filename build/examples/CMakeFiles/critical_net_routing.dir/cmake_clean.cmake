file(REMOVE_RECURSE
  "CMakeFiles/critical_net_routing.dir/critical_net_routing.cpp.o"
  "CMakeFiles/critical_net_routing.dir/critical_net_routing.cpp.o.d"
  "critical_net_routing"
  "critical_net_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/critical_net_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
