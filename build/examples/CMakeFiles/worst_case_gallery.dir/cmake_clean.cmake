file(REMOVE_RECURSE
  "CMakeFiles/worst_case_gallery.dir/worst_case_gallery.cpp.o"
  "CMakeFiles/worst_case_gallery.dir/worst_case_gallery.cpp.o.d"
  "worst_case_gallery"
  "worst_case_gallery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/worst_case_gallery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
