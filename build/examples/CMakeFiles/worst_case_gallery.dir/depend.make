# Empty dependencies file for worst_case_gallery.
# This may be replaced when dependencies are built.
