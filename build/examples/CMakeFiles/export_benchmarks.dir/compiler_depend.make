# Empty compiler generated dependencies file for export_benchmarks.
# This may be replaced when dependencies are built.
