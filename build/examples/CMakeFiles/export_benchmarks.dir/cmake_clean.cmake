file(REMOVE_RECURSE
  "CMakeFiles/export_benchmarks.dir/export_benchmarks.cpp.o"
  "CMakeFiles/export_benchmarks.dir/export_benchmarks.cpp.o.d"
  "export_benchmarks"
  "export_benchmarks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/export_benchmarks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
