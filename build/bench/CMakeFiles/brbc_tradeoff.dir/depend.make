# Empty dependencies file for brbc_tradeoff.
# This may be replaced when dependencies are built.
