file(REMOVE_RECURSE
  "CMakeFiles/brbc_tradeoff.dir/brbc_tradeoff.cpp.o"
  "CMakeFiles/brbc_tradeoff.dir/brbc_tradeoff.cpp.o.d"
  "brbc_tradeoff"
  "brbc_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/brbc_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
