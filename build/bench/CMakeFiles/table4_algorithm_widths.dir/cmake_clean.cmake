file(REMOVE_RECURSE
  "CMakeFiles/table4_algorithm_widths.dir/table4_algorithm_widths.cpp.o"
  "CMakeFiles/table4_algorithm_widths.dir/table4_algorithm_widths.cpp.o.d"
  "table4_algorithm_widths"
  "table4_algorithm_widths.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_algorithm_widths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
