# Empty compiler generated dependencies file for table4_algorithm_widths.
# This may be replaced when dependencies are built.
