# Empty compiler generated dependencies file for table1_steiner_arborescence.
# This may be replaced when dependencies are built.
