file(REMOVE_RECURSE
  "CMakeFiles/table1_steiner_arborescence.dir/table1_steiner_arborescence.cpp.o"
  "CMakeFiles/table1_steiner_arborescence.dir/table1_steiner_arborescence.cpp.o.d"
  "table1_steiner_arborescence"
  "table1_steiner_arborescence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_steiner_arborescence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
