# Empty compiler generated dependencies file for table2_xc3000_widths.
# This may be replaced when dependencies are built.
