file(REMOVE_RECURSE
  "CMakeFiles/table2_xc3000_widths.dir/table2_xc3000_widths.cpp.o"
  "CMakeFiles/table2_xc3000_widths.dir/table2_xc3000_widths.cpp.o.d"
  "table2_xc3000_widths"
  "table2_xc3000_widths.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_xc3000_widths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
