file(REMOVE_RECURSE
  "CMakeFiles/table5_wirelength_pathlength.dir/table5_wirelength_pathlength.cpp.o"
  "CMakeFiles/table5_wirelength_pathlength.dir/table5_wirelength_pathlength.cpp.o.d"
  "table5_wirelength_pathlength"
  "table5_wirelength_pathlength.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_wirelength_pathlength.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
