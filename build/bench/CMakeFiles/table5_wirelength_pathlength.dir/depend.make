# Empty dependencies file for table5_wirelength_pathlength.
# This may be replaced when dependencies are built.
