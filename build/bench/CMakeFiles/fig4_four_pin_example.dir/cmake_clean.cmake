file(REMOVE_RECURSE
  "CMakeFiles/fig4_four_pin_example.dir/fig4_four_pin_example.cpp.o"
  "CMakeFiles/fig4_four_pin_example.dir/fig4_four_pin_example.cpp.o.d"
  "fig4_four_pin_example"
  "fig4_four_pin_example.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_four_pin_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
