# Empty compiler generated dependencies file for fig4_four_pin_example.
# This may be replaced when dependencies are built.
