# Empty dependencies file for table3_xc4000_widths.
# This may be replaced when dependencies are built.
