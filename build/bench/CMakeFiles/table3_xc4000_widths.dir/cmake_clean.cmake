file(REMOVE_RECURSE
  "CMakeFiles/table3_xc4000_widths.dir/table3_xc4000_widths.cpp.o"
  "CMakeFiles/table3_xc4000_widths.dir/table3_xc4000_widths.cpp.o.d"
  "table3_xc4000_widths"
  "table3_xc4000_widths.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_xc4000_widths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
