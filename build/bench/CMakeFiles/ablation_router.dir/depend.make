# Empty dependencies file for ablation_router.
# This may be replaced when dependencies are built.
