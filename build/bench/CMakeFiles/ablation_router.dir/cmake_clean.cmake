file(REMOVE_RECURSE
  "CMakeFiles/ablation_router.dir/ablation_router.cpp.o"
  "CMakeFiles/ablation_router.dir/ablation_router.cpp.o.d"
  "ablation_router"
  "ablation_router.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_router.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
