file(REMOVE_RECURSE
  "CMakeFiles/ablation_candidates.dir/ablation_candidates.cpp.o"
  "CMakeFiles/ablation_candidates.dir/ablation_candidates.cpp.o.d"
  "ablation_candidates"
  "ablation_candidates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_candidates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
