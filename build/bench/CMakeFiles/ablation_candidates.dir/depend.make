# Empty dependencies file for ablation_candidates.
# This may be replaced when dependencies are built.
