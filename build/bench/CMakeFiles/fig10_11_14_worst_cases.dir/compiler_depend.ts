# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig10_11_14_worst_cases.
