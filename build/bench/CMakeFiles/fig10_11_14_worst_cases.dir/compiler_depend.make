# Empty compiler generated dependencies file for fig10_11_14_worst_cases.
# This may be replaced when dependencies are built.
