file(REMOVE_RECURSE
  "CMakeFiles/fig10_11_14_worst_cases.dir/fig10_11_14_worst_cases.cpp.o"
  "CMakeFiles/fig10_11_14_worst_cases.dir/fig10_11_14_worst_cases.cpp.o.d"
  "fig10_11_14_worst_cases"
  "fig10_11_14_worst_cases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_11_14_worst_cases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
