file(REMOVE_RECURSE
  "CMakeFiles/kmb_test.dir/steiner/kmb_test.cpp.o"
  "CMakeFiles/kmb_test.dir/steiner/kmb_test.cpp.o.d"
  "kmb_test"
  "kmb_test.pdb"
  "kmb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kmb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
