# Empty compiler generated dependencies file for kmb_test.
# This may be replaced when dependencies are built.
