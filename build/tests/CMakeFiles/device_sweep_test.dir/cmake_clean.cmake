file(REMOVE_RECURSE
  "CMakeFiles/device_sweep_test.dir/fpga/device_sweep_test.cpp.o"
  "CMakeFiles/device_sweep_test.dir/fpga/device_sweep_test.cpp.o.d"
  "device_sweep_test"
  "device_sweep_test.pdb"
  "device_sweep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/device_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
