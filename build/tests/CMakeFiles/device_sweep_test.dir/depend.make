# Empty dependencies file for device_sweep_test.
# This may be replaced when dependencies are built.
