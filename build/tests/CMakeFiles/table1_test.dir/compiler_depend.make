# Empty compiler generated dependencies file for table1_test.
# This may be replaced when dependencies are built.
