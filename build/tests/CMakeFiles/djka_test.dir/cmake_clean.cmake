file(REMOVE_RECURSE
  "CMakeFiles/djka_test.dir/arbor/djka_test.cpp.o"
  "CMakeFiles/djka_test.dir/arbor/djka_test.cpp.o.d"
  "djka_test"
  "djka_test.pdb"
  "djka_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/djka_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
