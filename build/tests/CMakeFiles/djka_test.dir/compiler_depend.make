# Empty compiler generated dependencies file for djka_test.
# This may be replaced when dependencies are built.
