file(REMOVE_RECURSE
  "CMakeFiles/arbor_properties_test.dir/arbor/arbor_properties_test.cpp.o"
  "CMakeFiles/arbor_properties_test.dir/arbor/arbor_properties_test.cpp.o.d"
  "arbor_properties_test"
  "arbor_properties_test.pdb"
  "arbor_properties_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arbor_properties_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
