# Empty compiler generated dependencies file for arbor_properties_test.
# This may be replaced when dependencies are built.
