file(REMOVE_RECURSE
  "CMakeFiles/random_nets_test.dir/workload/random_nets_test.cpp.o"
  "CMakeFiles/random_nets_test.dir/workload/random_nets_test.cpp.o.d"
  "random_nets_test"
  "random_nets_test.pdb"
  "random_nets_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/random_nets_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
