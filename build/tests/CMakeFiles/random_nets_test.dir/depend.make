# Empty dependencies file for random_nets_test.
# This may be replaced when dependencies are built.
