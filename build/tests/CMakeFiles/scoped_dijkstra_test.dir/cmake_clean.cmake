file(REMOVE_RECURSE
  "CMakeFiles/scoped_dijkstra_test.dir/graph/scoped_dijkstra_test.cpp.o"
  "CMakeFiles/scoped_dijkstra_test.dir/graph/scoped_dijkstra_test.cpp.o.d"
  "scoped_dijkstra_test"
  "scoped_dijkstra_test.pdb"
  "scoped_dijkstra_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scoped_dijkstra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
