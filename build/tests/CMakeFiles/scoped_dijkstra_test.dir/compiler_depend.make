# Empty compiler generated dependencies file for scoped_dijkstra_test.
# This may be replaced when dependencies are built.
