# Empty compiler generated dependencies file for idom_test.
# This may be replaced when dependencies are built.
