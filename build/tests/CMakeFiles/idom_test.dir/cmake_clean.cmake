file(REMOVE_RECURSE
  "CMakeFiles/idom_test.dir/arbor/idom_test.cpp.o"
  "CMakeFiles/idom_test.dir/arbor/idom_test.cpp.o.d"
  "idom_test"
  "idom_test.pdb"
  "idom_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idom_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
