# Empty dependencies file for dominance_test.
# This may be replaced when dependencies are built.
