file(REMOVE_RECURSE
  "CMakeFiles/dominance_test.dir/arbor/dominance_test.cpp.o"
  "CMakeFiles/dominance_test.dir/arbor/dominance_test.cpp.o.d"
  "dominance_test"
  "dominance_test.pdb"
  "dominance_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dominance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
