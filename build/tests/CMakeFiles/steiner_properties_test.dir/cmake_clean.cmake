file(REMOVE_RECURSE
  "CMakeFiles/steiner_properties_test.dir/steiner/steiner_properties_test.cpp.o"
  "CMakeFiles/steiner_properties_test.dir/steiner/steiner_properties_test.cpp.o.d"
  "steiner_properties_test"
  "steiner_properties_test.pdb"
  "steiner_properties_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/steiner_properties_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
