# Empty dependencies file for steiner_properties_test.
# This may be replaced when dependencies are built.
