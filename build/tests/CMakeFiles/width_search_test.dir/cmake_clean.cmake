file(REMOVE_RECURSE
  "CMakeFiles/width_search_test.dir/router/width_search_test.cpp.o"
  "CMakeFiles/width_search_test.dir/router/width_search_test.cpp.o.d"
  "width_search_test"
  "width_search_test.pdb"
  "width_search_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/width_search_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
