# Empty dependencies file for width_search_test.
# This may be replaced when dependencies are built.
