# Empty dependencies file for device3d_test.
# This may be replaced when dependencies are built.
