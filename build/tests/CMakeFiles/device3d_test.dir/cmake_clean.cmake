file(REMOVE_RECURSE
  "CMakeFiles/device3d_test.dir/fpga/device3d_test.cpp.o"
  "CMakeFiles/device3d_test.dir/fpga/device3d_test.cpp.o.d"
  "device3d_test"
  "device3d_test.pdb"
  "device3d_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/device3d_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
