# Empty compiler generated dependencies file for worstcase_test.
# This may be replaced when dependencies are built.
