file(REMOVE_RECURSE
  "CMakeFiles/worstcase_test.dir/workload/worstcase_test.cpp.o"
  "CMakeFiles/worstcase_test.dir/workload/worstcase_test.cpp.o.d"
  "worstcase_test"
  "worstcase_test.pdb"
  "worstcase_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/worstcase_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
