file(REMOVE_RECURSE
  "CMakeFiles/text_io_test.dir/io/text_io_test.cpp.o"
  "CMakeFiles/text_io_test.dir/io/text_io_test.cpp.o.d"
  "text_io_test"
  "text_io_test.pdb"
  "text_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/text_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
