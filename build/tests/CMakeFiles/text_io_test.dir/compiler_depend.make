# Empty compiler generated dependencies file for text_io_test.
# This may be replaced when dependencies are built.
