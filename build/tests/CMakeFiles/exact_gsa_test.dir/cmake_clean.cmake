file(REMOVE_RECURSE
  "CMakeFiles/exact_gsa_test.dir/arbor/exact_gsa_test.cpp.o"
  "CMakeFiles/exact_gsa_test.dir/arbor/exact_gsa_test.cpp.o.d"
  "exact_gsa_test"
  "exact_gsa_test.pdb"
  "exact_gsa_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exact_gsa_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
