# Empty dependencies file for exact_gsa_test.
# This may be replaced when dependencies are built.
