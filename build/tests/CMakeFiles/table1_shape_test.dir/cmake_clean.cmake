file(REMOVE_RECURSE
  "CMakeFiles/table1_shape_test.dir/experiments/table1_shape_test.cpp.o"
  "CMakeFiles/table1_shape_test.dir/experiments/table1_shape_test.cpp.o.d"
  "table1_shape_test"
  "table1_shape_test.pdb"
  "table1_shape_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_shape_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
