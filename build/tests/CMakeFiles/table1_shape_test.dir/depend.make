# Empty dependencies file for table1_shape_test.
# This may be replaced when dependencies are built.
