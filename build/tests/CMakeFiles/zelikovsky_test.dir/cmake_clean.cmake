file(REMOVE_RECURSE
  "CMakeFiles/zelikovsky_test.dir/steiner/zelikovsky_test.cpp.o"
  "CMakeFiles/zelikovsky_test.dir/steiner/zelikovsky_test.cpp.o.d"
  "zelikovsky_test"
  "zelikovsky_test.pdb"
  "zelikovsky_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zelikovsky_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
