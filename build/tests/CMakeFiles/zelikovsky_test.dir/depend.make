# Empty dependencies file for zelikovsky_test.
# This may be replaced when dependencies are built.
