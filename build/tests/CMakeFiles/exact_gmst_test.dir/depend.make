# Empty dependencies file for exact_gmst_test.
# This may be replaced when dependencies are built.
