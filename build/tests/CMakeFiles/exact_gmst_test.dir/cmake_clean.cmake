file(REMOVE_RECURSE
  "CMakeFiles/exact_gmst_test.dir/steiner/exact_gmst_test.cpp.o"
  "CMakeFiles/exact_gmst_test.dir/steiner/exact_gmst_test.cpp.o.d"
  "exact_gmst_test"
  "exact_gmst_test.pdb"
  "exact_gmst_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exact_gmst_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
