# Empty dependencies file for dijkstra_test.
# This may be replaced when dependencies are built.
