file(REMOVE_RECURSE
  "CMakeFiles/dijkstra_test.dir/graph/dijkstra_test.cpp.o"
  "CMakeFiles/dijkstra_test.dir/graph/dijkstra_test.cpp.o.d"
  "dijkstra_test"
  "dijkstra_test.pdb"
  "dijkstra_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dijkstra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
