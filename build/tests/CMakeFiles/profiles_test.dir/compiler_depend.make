# Empty compiler generated dependencies file for profiles_test.
# This may be replaced when dependencies are built.
