
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/netlist/netlist_test.cpp" "tests/CMakeFiles/netlist_test.dir/netlist/netlist_test.cpp.o" "gcc" "tests/CMakeFiles/netlist_test.dir/netlist/netlist_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fpr_io.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fpr_experiments.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fpr_router.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fpr_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fpr_fpga.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fpr_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fpr_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fpr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fpr_arbor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fpr_steiner.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fpr_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
