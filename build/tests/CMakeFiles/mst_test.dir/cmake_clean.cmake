file(REMOVE_RECURSE
  "CMakeFiles/mst_test.dir/graph/mst_test.cpp.o"
  "CMakeFiles/mst_test.dir/graph/mst_test.cpp.o.d"
  "mst_test"
  "mst_test.pdb"
  "mst_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mst_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
