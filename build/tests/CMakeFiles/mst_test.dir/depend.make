# Empty dependencies file for mst_test.
# This may be replaced when dependencies are built.
