file(REMOVE_RECURSE
  "CMakeFiles/switchbox_test.dir/fpga/switchbox_test.cpp.o"
  "CMakeFiles/switchbox_test.dir/fpga/switchbox_test.cpp.o.d"
  "switchbox_test"
  "switchbox_test.pdb"
  "switchbox_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/switchbox_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
