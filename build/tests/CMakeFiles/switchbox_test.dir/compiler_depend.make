# Empty compiler generated dependencies file for switchbox_test.
# This may be replaced when dependencies are built.
