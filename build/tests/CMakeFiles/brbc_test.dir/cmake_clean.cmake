file(REMOVE_RECURSE
  "CMakeFiles/brbc_test.dir/arbor/brbc_test.cpp.o"
  "CMakeFiles/brbc_test.dir/arbor/brbc_test.cpp.o.d"
  "brbc_test"
  "brbc_test.pdb"
  "brbc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/brbc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
