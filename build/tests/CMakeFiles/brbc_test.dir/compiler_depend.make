# Empty compiler generated dependencies file for brbc_test.
# This may be replaced when dependencies are built.
