# Empty dependencies file for igmst_test.
# This may be replaced when dependencies are built.
