file(REMOVE_RECURSE
  "CMakeFiles/igmst_test.dir/steiner/igmst_test.cpp.o"
  "CMakeFiles/igmst_test.dir/steiner/igmst_test.cpp.o.d"
  "igmst_test"
  "igmst_test.pdb"
  "igmst_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/igmst_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
