file(REMOVE_RECURSE
  "CMakeFiles/circuits_test.dir/experiments/circuits_test.cpp.o"
  "CMakeFiles/circuits_test.dir/experiments/circuits_test.cpp.o.d"
  "circuits_test"
  "circuits_test.pdb"
  "circuits_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/circuits_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
