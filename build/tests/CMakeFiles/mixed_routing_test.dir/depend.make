# Empty dependencies file for mixed_routing_test.
# This may be replaced when dependencies are built.
