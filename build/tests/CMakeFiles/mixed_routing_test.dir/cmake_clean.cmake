file(REMOVE_RECURSE
  "CMakeFiles/mixed_routing_test.dir/router/mixed_routing_test.cpp.o"
  "CMakeFiles/mixed_routing_test.dir/router/mixed_routing_test.cpp.o.d"
  "mixed_routing_test"
  "mixed_routing_test.pdb"
  "mixed_routing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mixed_routing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
