file(REMOVE_RECURSE
  "CMakeFiles/pfa_test.dir/arbor/pfa_test.cpp.o"
  "CMakeFiles/pfa_test.dir/arbor/pfa_test.cpp.o.d"
  "pfa_test"
  "pfa_test.pdb"
  "pfa_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfa_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
