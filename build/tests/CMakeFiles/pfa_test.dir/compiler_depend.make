# Empty compiler generated dependencies file for pfa_test.
# This may be replaced when dependencies are built.
