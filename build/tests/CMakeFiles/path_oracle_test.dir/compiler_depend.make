# Empty compiler generated dependencies file for path_oracle_test.
# This may be replaced when dependencies are built.
