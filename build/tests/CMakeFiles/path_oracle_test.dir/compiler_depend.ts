# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for path_oracle_test.
