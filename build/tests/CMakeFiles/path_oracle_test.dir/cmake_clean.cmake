file(REMOVE_RECURSE
  "CMakeFiles/path_oracle_test.dir/graph/path_oracle_test.cpp.o"
  "CMakeFiles/path_oracle_test.dir/graph/path_oracle_test.cpp.o.d"
  "path_oracle_test"
  "path_oracle_test.pdb"
  "path_oracle_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/path_oracle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
