# Empty dependencies file for distance_graph_test.
# This may be replaced when dependencies are built.
