file(REMOVE_RECURSE
  "CMakeFiles/distance_graph_test.dir/graph/distance_graph_test.cpp.o"
  "CMakeFiles/distance_graph_test.dir/graph/distance_graph_test.cpp.o.d"
  "distance_graph_test"
  "distance_graph_test.pdb"
  "distance_graph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distance_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
