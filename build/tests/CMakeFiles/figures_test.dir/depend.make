# Empty dependencies file for figures_test.
# This may be replaced when dependencies are built.
