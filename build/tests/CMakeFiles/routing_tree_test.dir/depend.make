# Empty dependencies file for routing_tree_test.
# This may be replaced when dependencies are built.
