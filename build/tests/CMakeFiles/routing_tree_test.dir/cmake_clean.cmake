file(REMOVE_RECURSE
  "CMakeFiles/routing_tree_test.dir/graph/routing_tree_test.cpp.o"
  "CMakeFiles/routing_tree_test.dir/graph/routing_tree_test.cpp.o.d"
  "routing_tree_test"
  "routing_tree_test.pdb"
  "routing_tree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/routing_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
