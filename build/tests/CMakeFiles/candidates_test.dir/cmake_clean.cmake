file(REMOVE_RECURSE
  "CMakeFiles/candidates_test.dir/steiner/candidates_test.cpp.o"
  "CMakeFiles/candidates_test.dir/steiner/candidates_test.cpp.o.d"
  "candidates_test"
  "candidates_test.pdb"
  "candidates_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/candidates_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
