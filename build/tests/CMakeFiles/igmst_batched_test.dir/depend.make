# Empty dependencies file for igmst_batched_test.
# This may be replaced when dependencies are built.
