file(REMOVE_RECURSE
  "CMakeFiles/igmst_batched_test.dir/steiner/igmst_batched_test.cpp.o"
  "CMakeFiles/igmst_batched_test.dir/steiner/igmst_batched_test.cpp.o.d"
  "igmst_batched_test"
  "igmst_batched_test.pdb"
  "igmst_batched_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/igmst_batched_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
