# Empty compiler generated dependencies file for dom_test.
# This may be replaced when dependencies are built.
