file(REMOVE_RECURSE
  "CMakeFiles/dom_test.dir/arbor/dom_test.cpp.o"
  "CMakeFiles/dom_test.dir/arbor/dom_test.cpp.o.d"
  "dom_test"
  "dom_test.pdb"
  "dom_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dom_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
