# Empty compiler generated dependencies file for fpr_steiner.
# This may be replaced when dependencies are built.
