file(REMOVE_RECURSE
  "CMakeFiles/fpr_steiner.dir/steiner/candidates.cpp.o"
  "CMakeFiles/fpr_steiner.dir/steiner/candidates.cpp.o.d"
  "CMakeFiles/fpr_steiner.dir/steiner/exact_gmst.cpp.o"
  "CMakeFiles/fpr_steiner.dir/steiner/exact_gmst.cpp.o.d"
  "CMakeFiles/fpr_steiner.dir/steiner/igmst.cpp.o"
  "CMakeFiles/fpr_steiner.dir/steiner/igmst.cpp.o.d"
  "CMakeFiles/fpr_steiner.dir/steiner/kmb.cpp.o"
  "CMakeFiles/fpr_steiner.dir/steiner/kmb.cpp.o.d"
  "CMakeFiles/fpr_steiner.dir/steiner/zelikovsky.cpp.o"
  "CMakeFiles/fpr_steiner.dir/steiner/zelikovsky.cpp.o.d"
  "libfpr_steiner.a"
  "libfpr_steiner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpr_steiner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
