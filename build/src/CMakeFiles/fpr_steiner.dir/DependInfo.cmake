
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/steiner/candidates.cpp" "src/CMakeFiles/fpr_steiner.dir/steiner/candidates.cpp.o" "gcc" "src/CMakeFiles/fpr_steiner.dir/steiner/candidates.cpp.o.d"
  "/root/repo/src/steiner/exact_gmst.cpp" "src/CMakeFiles/fpr_steiner.dir/steiner/exact_gmst.cpp.o" "gcc" "src/CMakeFiles/fpr_steiner.dir/steiner/exact_gmst.cpp.o.d"
  "/root/repo/src/steiner/igmst.cpp" "src/CMakeFiles/fpr_steiner.dir/steiner/igmst.cpp.o" "gcc" "src/CMakeFiles/fpr_steiner.dir/steiner/igmst.cpp.o.d"
  "/root/repo/src/steiner/kmb.cpp" "src/CMakeFiles/fpr_steiner.dir/steiner/kmb.cpp.o" "gcc" "src/CMakeFiles/fpr_steiner.dir/steiner/kmb.cpp.o.d"
  "/root/repo/src/steiner/zelikovsky.cpp" "src/CMakeFiles/fpr_steiner.dir/steiner/zelikovsky.cpp.o" "gcc" "src/CMakeFiles/fpr_steiner.dir/steiner/zelikovsky.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fpr_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
