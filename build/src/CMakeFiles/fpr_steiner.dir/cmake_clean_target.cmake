file(REMOVE_RECURSE
  "libfpr_steiner.a"
)
