
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/dijkstra.cpp" "src/CMakeFiles/fpr_graph.dir/graph/dijkstra.cpp.o" "gcc" "src/CMakeFiles/fpr_graph.dir/graph/dijkstra.cpp.o.d"
  "/root/repo/src/graph/distance_graph.cpp" "src/CMakeFiles/fpr_graph.dir/graph/distance_graph.cpp.o" "gcc" "src/CMakeFiles/fpr_graph.dir/graph/distance_graph.cpp.o.d"
  "/root/repo/src/graph/graph.cpp" "src/CMakeFiles/fpr_graph.dir/graph/graph.cpp.o" "gcc" "src/CMakeFiles/fpr_graph.dir/graph/graph.cpp.o.d"
  "/root/repo/src/graph/grid.cpp" "src/CMakeFiles/fpr_graph.dir/graph/grid.cpp.o" "gcc" "src/CMakeFiles/fpr_graph.dir/graph/grid.cpp.o.d"
  "/root/repo/src/graph/mst.cpp" "src/CMakeFiles/fpr_graph.dir/graph/mst.cpp.o" "gcc" "src/CMakeFiles/fpr_graph.dir/graph/mst.cpp.o.d"
  "/root/repo/src/graph/path_oracle.cpp" "src/CMakeFiles/fpr_graph.dir/graph/path_oracle.cpp.o" "gcc" "src/CMakeFiles/fpr_graph.dir/graph/path_oracle.cpp.o.d"
  "/root/repo/src/graph/routing_tree.cpp" "src/CMakeFiles/fpr_graph.dir/graph/routing_tree.cpp.o" "gcc" "src/CMakeFiles/fpr_graph.dir/graph/routing_tree.cpp.o.d"
  "/root/repo/src/graph/union_find.cpp" "src/CMakeFiles/fpr_graph.dir/graph/union_find.cpp.o" "gcc" "src/CMakeFiles/fpr_graph.dir/graph/union_find.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
