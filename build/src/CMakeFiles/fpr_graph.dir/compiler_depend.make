# Empty compiler generated dependencies file for fpr_graph.
# This may be replaced when dependencies are built.
