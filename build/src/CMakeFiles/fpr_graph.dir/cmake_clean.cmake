file(REMOVE_RECURSE
  "CMakeFiles/fpr_graph.dir/graph/dijkstra.cpp.o"
  "CMakeFiles/fpr_graph.dir/graph/dijkstra.cpp.o.d"
  "CMakeFiles/fpr_graph.dir/graph/distance_graph.cpp.o"
  "CMakeFiles/fpr_graph.dir/graph/distance_graph.cpp.o.d"
  "CMakeFiles/fpr_graph.dir/graph/graph.cpp.o"
  "CMakeFiles/fpr_graph.dir/graph/graph.cpp.o.d"
  "CMakeFiles/fpr_graph.dir/graph/grid.cpp.o"
  "CMakeFiles/fpr_graph.dir/graph/grid.cpp.o.d"
  "CMakeFiles/fpr_graph.dir/graph/mst.cpp.o"
  "CMakeFiles/fpr_graph.dir/graph/mst.cpp.o.d"
  "CMakeFiles/fpr_graph.dir/graph/path_oracle.cpp.o"
  "CMakeFiles/fpr_graph.dir/graph/path_oracle.cpp.o.d"
  "CMakeFiles/fpr_graph.dir/graph/routing_tree.cpp.o"
  "CMakeFiles/fpr_graph.dir/graph/routing_tree.cpp.o.d"
  "CMakeFiles/fpr_graph.dir/graph/union_find.cpp.o"
  "CMakeFiles/fpr_graph.dir/graph/union_find.cpp.o.d"
  "libfpr_graph.a"
  "libfpr_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpr_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
