file(REMOVE_RECURSE
  "libfpr_graph.a"
)
