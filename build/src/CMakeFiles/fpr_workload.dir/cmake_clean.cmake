file(REMOVE_RECURSE
  "CMakeFiles/fpr_workload.dir/workload/congestion_model.cpp.o"
  "CMakeFiles/fpr_workload.dir/workload/congestion_model.cpp.o.d"
  "CMakeFiles/fpr_workload.dir/workload/random_nets.cpp.o"
  "CMakeFiles/fpr_workload.dir/workload/random_nets.cpp.o.d"
  "CMakeFiles/fpr_workload.dir/workload/worstcase.cpp.o"
  "CMakeFiles/fpr_workload.dir/workload/worstcase.cpp.o.d"
  "libfpr_workload.a"
  "libfpr_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpr_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
