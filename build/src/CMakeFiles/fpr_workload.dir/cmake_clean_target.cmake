file(REMOVE_RECURSE
  "libfpr_workload.a"
)
