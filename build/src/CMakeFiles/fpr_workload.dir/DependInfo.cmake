
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/congestion_model.cpp" "src/CMakeFiles/fpr_workload.dir/workload/congestion_model.cpp.o" "gcc" "src/CMakeFiles/fpr_workload.dir/workload/congestion_model.cpp.o.d"
  "/root/repo/src/workload/random_nets.cpp" "src/CMakeFiles/fpr_workload.dir/workload/random_nets.cpp.o" "gcc" "src/CMakeFiles/fpr_workload.dir/workload/random_nets.cpp.o.d"
  "/root/repo/src/workload/worstcase.cpp" "src/CMakeFiles/fpr_workload.dir/workload/worstcase.cpp.o" "gcc" "src/CMakeFiles/fpr_workload.dir/workload/worstcase.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fpr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fpr_arbor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fpr_steiner.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fpr_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
