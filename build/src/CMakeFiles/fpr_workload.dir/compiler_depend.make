# Empty compiler generated dependencies file for fpr_workload.
# This may be replaced when dependencies are built.
