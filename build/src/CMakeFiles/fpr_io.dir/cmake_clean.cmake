file(REMOVE_RECURSE
  "CMakeFiles/fpr_io.dir/io/text_io.cpp.o"
  "CMakeFiles/fpr_io.dir/io/text_io.cpp.o.d"
  "libfpr_io.a"
  "libfpr_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpr_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
