# Empty compiler generated dependencies file for fpr_io.
# This may be replaced when dependencies are built.
