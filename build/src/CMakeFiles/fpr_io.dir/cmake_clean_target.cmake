file(REMOVE_RECURSE
  "libfpr_io.a"
)
