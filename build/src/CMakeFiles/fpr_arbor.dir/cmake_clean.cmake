file(REMOVE_RECURSE
  "CMakeFiles/fpr_arbor.dir/arbor/arbor_common.cpp.o"
  "CMakeFiles/fpr_arbor.dir/arbor/arbor_common.cpp.o.d"
  "CMakeFiles/fpr_arbor.dir/arbor/brbc.cpp.o"
  "CMakeFiles/fpr_arbor.dir/arbor/brbc.cpp.o.d"
  "CMakeFiles/fpr_arbor.dir/arbor/djka.cpp.o"
  "CMakeFiles/fpr_arbor.dir/arbor/djka.cpp.o.d"
  "CMakeFiles/fpr_arbor.dir/arbor/dom.cpp.o"
  "CMakeFiles/fpr_arbor.dir/arbor/dom.cpp.o.d"
  "CMakeFiles/fpr_arbor.dir/arbor/dominance.cpp.o"
  "CMakeFiles/fpr_arbor.dir/arbor/dominance.cpp.o.d"
  "CMakeFiles/fpr_arbor.dir/arbor/exact_gsa.cpp.o"
  "CMakeFiles/fpr_arbor.dir/arbor/exact_gsa.cpp.o.d"
  "CMakeFiles/fpr_arbor.dir/arbor/idom.cpp.o"
  "CMakeFiles/fpr_arbor.dir/arbor/idom.cpp.o.d"
  "CMakeFiles/fpr_arbor.dir/arbor/pfa.cpp.o"
  "CMakeFiles/fpr_arbor.dir/arbor/pfa.cpp.o.d"
  "libfpr_arbor.a"
  "libfpr_arbor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpr_arbor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
