# Empty dependencies file for fpr_arbor.
# This may be replaced when dependencies are built.
