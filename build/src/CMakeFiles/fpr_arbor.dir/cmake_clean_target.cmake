file(REMOVE_RECURSE
  "libfpr_arbor.a"
)
