
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arbor/arbor_common.cpp" "src/CMakeFiles/fpr_arbor.dir/arbor/arbor_common.cpp.o" "gcc" "src/CMakeFiles/fpr_arbor.dir/arbor/arbor_common.cpp.o.d"
  "/root/repo/src/arbor/brbc.cpp" "src/CMakeFiles/fpr_arbor.dir/arbor/brbc.cpp.o" "gcc" "src/CMakeFiles/fpr_arbor.dir/arbor/brbc.cpp.o.d"
  "/root/repo/src/arbor/djka.cpp" "src/CMakeFiles/fpr_arbor.dir/arbor/djka.cpp.o" "gcc" "src/CMakeFiles/fpr_arbor.dir/arbor/djka.cpp.o.d"
  "/root/repo/src/arbor/dom.cpp" "src/CMakeFiles/fpr_arbor.dir/arbor/dom.cpp.o" "gcc" "src/CMakeFiles/fpr_arbor.dir/arbor/dom.cpp.o.d"
  "/root/repo/src/arbor/dominance.cpp" "src/CMakeFiles/fpr_arbor.dir/arbor/dominance.cpp.o" "gcc" "src/CMakeFiles/fpr_arbor.dir/arbor/dominance.cpp.o.d"
  "/root/repo/src/arbor/exact_gsa.cpp" "src/CMakeFiles/fpr_arbor.dir/arbor/exact_gsa.cpp.o" "gcc" "src/CMakeFiles/fpr_arbor.dir/arbor/exact_gsa.cpp.o.d"
  "/root/repo/src/arbor/idom.cpp" "src/CMakeFiles/fpr_arbor.dir/arbor/idom.cpp.o" "gcc" "src/CMakeFiles/fpr_arbor.dir/arbor/idom.cpp.o.d"
  "/root/repo/src/arbor/pfa.cpp" "src/CMakeFiles/fpr_arbor.dir/arbor/pfa.cpp.o" "gcc" "src/CMakeFiles/fpr_arbor.dir/arbor/pfa.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fpr_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fpr_steiner.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
