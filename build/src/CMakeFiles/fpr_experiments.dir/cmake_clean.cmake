file(REMOVE_RECURSE
  "CMakeFiles/fpr_experiments.dir/experiments/figures.cpp.o"
  "CMakeFiles/fpr_experiments.dir/experiments/figures.cpp.o.d"
  "CMakeFiles/fpr_experiments.dir/experiments/table1.cpp.o"
  "CMakeFiles/fpr_experiments.dir/experiments/table1.cpp.o.d"
  "CMakeFiles/fpr_experiments.dir/experiments/table45.cpp.o"
  "CMakeFiles/fpr_experiments.dir/experiments/table45.cpp.o.d"
  "CMakeFiles/fpr_experiments.dir/experiments/tables23.cpp.o"
  "CMakeFiles/fpr_experiments.dir/experiments/tables23.cpp.o.d"
  "libfpr_experiments.a"
  "libfpr_experiments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpr_experiments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
