# Empty compiler generated dependencies file for fpr_experiments.
# This may be replaced when dependencies are built.
