file(REMOVE_RECURSE
  "libfpr_experiments.a"
)
