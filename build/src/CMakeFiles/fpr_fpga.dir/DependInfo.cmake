
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fpga/arch.cpp" "src/CMakeFiles/fpr_fpga.dir/fpga/arch.cpp.o" "gcc" "src/CMakeFiles/fpr_fpga.dir/fpga/arch.cpp.o.d"
  "/root/repo/src/fpga/device.cpp" "src/CMakeFiles/fpr_fpga.dir/fpga/device.cpp.o" "gcc" "src/CMakeFiles/fpr_fpga.dir/fpga/device.cpp.o.d"
  "/root/repo/src/fpga/device3d.cpp" "src/CMakeFiles/fpr_fpga.dir/fpga/device3d.cpp.o" "gcc" "src/CMakeFiles/fpr_fpga.dir/fpga/device3d.cpp.o.d"
  "/root/repo/src/fpga/switchbox.cpp" "src/CMakeFiles/fpr_fpga.dir/fpga/switchbox.cpp.o" "gcc" "src/CMakeFiles/fpr_fpga.dir/fpga/switchbox.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fpr_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
