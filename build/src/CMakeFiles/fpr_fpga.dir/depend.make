# Empty dependencies file for fpr_fpga.
# This may be replaced when dependencies are built.
