file(REMOVE_RECURSE
  "libfpr_fpga.a"
)
