file(REMOVE_RECURSE
  "CMakeFiles/fpr_fpga.dir/fpga/arch.cpp.o"
  "CMakeFiles/fpr_fpga.dir/fpga/arch.cpp.o.d"
  "CMakeFiles/fpr_fpga.dir/fpga/device.cpp.o"
  "CMakeFiles/fpr_fpga.dir/fpga/device.cpp.o.d"
  "CMakeFiles/fpr_fpga.dir/fpga/device3d.cpp.o"
  "CMakeFiles/fpr_fpga.dir/fpga/device3d.cpp.o.d"
  "CMakeFiles/fpr_fpga.dir/fpga/switchbox.cpp.o"
  "CMakeFiles/fpr_fpga.dir/fpga/switchbox.cpp.o.d"
  "libfpr_fpga.a"
  "libfpr_fpga.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpr_fpga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
