file(REMOVE_RECURSE
  "CMakeFiles/fpr_analysis.dir/analysis/stats.cpp.o"
  "CMakeFiles/fpr_analysis.dir/analysis/stats.cpp.o.d"
  "CMakeFiles/fpr_analysis.dir/analysis/table.cpp.o"
  "CMakeFiles/fpr_analysis.dir/analysis/table.cpp.o.d"
  "libfpr_analysis.a"
  "libfpr_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpr_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
