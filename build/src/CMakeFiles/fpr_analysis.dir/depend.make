# Empty dependencies file for fpr_analysis.
# This may be replaced when dependencies are built.
