file(REMOVE_RECURSE
  "libfpr_analysis.a"
)
