# Empty compiler generated dependencies file for fpr_router.
# This may be replaced when dependencies are built.
