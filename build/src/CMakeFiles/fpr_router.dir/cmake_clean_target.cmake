file(REMOVE_RECURSE
  "libfpr_router.a"
)
