file(REMOVE_RECURSE
  "CMakeFiles/fpr_router.dir/router/baseline.cpp.o"
  "CMakeFiles/fpr_router.dir/router/baseline.cpp.o.d"
  "CMakeFiles/fpr_router.dir/router/router.cpp.o"
  "CMakeFiles/fpr_router.dir/router/router.cpp.o.d"
  "CMakeFiles/fpr_router.dir/router/width_search.cpp.o"
  "CMakeFiles/fpr_router.dir/router/width_search.cpp.o.d"
  "libfpr_router.a"
  "libfpr_router.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpr_router.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
