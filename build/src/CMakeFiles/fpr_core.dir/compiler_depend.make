# Empty compiler generated dependencies file for fpr_core.
# This may be replaced when dependencies are built.
