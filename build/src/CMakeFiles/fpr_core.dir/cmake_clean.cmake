file(REMOVE_RECURSE
  "CMakeFiles/fpr_core.dir/core/metrics.cpp.o"
  "CMakeFiles/fpr_core.dir/core/metrics.cpp.o.d"
  "CMakeFiles/fpr_core.dir/core/route.cpp.o"
  "CMakeFiles/fpr_core.dir/core/route.cpp.o.d"
  "libfpr_core.a"
  "libfpr_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpr_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
