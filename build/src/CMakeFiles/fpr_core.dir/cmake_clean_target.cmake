file(REMOVE_RECURSE
  "libfpr_core.a"
)
