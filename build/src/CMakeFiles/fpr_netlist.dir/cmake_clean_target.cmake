file(REMOVE_RECURSE
  "libfpr_netlist.a"
)
