file(REMOVE_RECURSE
  "CMakeFiles/fpr_netlist.dir/netlist/netlist.cpp.o"
  "CMakeFiles/fpr_netlist.dir/netlist/netlist.cpp.o.d"
  "CMakeFiles/fpr_netlist.dir/netlist/profiles.cpp.o"
  "CMakeFiles/fpr_netlist.dir/netlist/profiles.cpp.o.d"
  "CMakeFiles/fpr_netlist.dir/netlist/synth.cpp.o"
  "CMakeFiles/fpr_netlist.dir/netlist/synth.cpp.o.d"
  "libfpr_netlist.a"
  "libfpr_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpr_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
