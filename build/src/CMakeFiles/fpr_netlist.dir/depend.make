# Empty dependencies file for fpr_netlist.
# This may be replaced when dependencies are built.
