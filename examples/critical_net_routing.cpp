// Critical-net routing: why arborescences matter for performance-driven
// FPGA design. Routes the same timing-critical net with a wirelength-only
// Steiner heuristic (IKMB) and with the arborescence constructions
// (PFA/IDOM), on a congested graph where the two objectives genuinely
// conflict, and shows the delay (pathlength) gap.

#include <cstdio>
#include <random>

#include "core/metrics.hpp"
#include "core/route.hpp"
#include "workload/congestion_model.hpp"
#include "workload/random_nets.hpp"

int main() {
  using namespace fpr;

  std::mt19937_64 rng(7);
  // Medium congestion, as in Table 1's third block: 20 pre-routed nets.
  GridGraph grid = make_congested_grid(20, 20, 20, rng);
  std::printf("Congested 20x20 grid, mean edge weight %.2f (paper level: 1.55)\n\n",
              grid.graph().mean_active_edge_weight());

  // A high-fanout critical net.
  const Net net = random_grid_net(grid, 8, rng);

  PathOracle oracle(grid.graph());
  const auto& spt = oracle.from(net.source);
  std::printf("Net: source %d, %zu sinks; optimal per-sink delays:\n", net.source,
              net.sinks.size());
  for (const NodeId s : net.sinks) std::printf("  sink %4d: optimal delay %.1f\n", s, spt.distance(s));

  std::printf("\n%-6s %12s %16s %22s\n", "algo", "wirelength", "max pathlength",
              "worst sink slowdown");
  for (const Algorithm algo : {Algorithm::kIkmb, Algorithm::kDjka, Algorithm::kPfa,
                               Algorithm::kIdom}) {
    const RoutingTree tree = route(grid.graph(), net, algo, oracle);
    const TreeMetrics m = measure(grid.graph(), net, tree, oracle);
    double worst_slowdown = 0;
    for (const NodeId s : net.sinks) {
      const Weight actual = tree.path_length(net.source, s);
      worst_slowdown = std::max(worst_slowdown,
                                100.0 * (actual - spt.distance(s)) / spt.distance(s));
    }
    std::printf("%-6s %12.1f %16.1f %20.1f%%\n", algorithm_name(algo).data(), m.wirelength,
                m.max_pathlength, worst_slowdown);
  }

  std::printf(
      "\nIKMB's tree can reach some sink far off its shortest path; PFA and\n"
      "IDOM pin every sink at its optimal delay, paying only a modest\n"
      "wirelength premium — the paper's critical-net routing tradeoff.\n");
  return 0;
}
