// Minimal command-line router: load a circuit file (see src/io/text_io.hpp
// for the format; export_benchmarks writes compatible files), route it on a
// Xilinx-style device at the given channel width, and report the outcome.
//
// Usage: route_cli <circuit.net> [width] [xc3000|xc4000] [ikmb|pfa|idom]
//                  [paper|negotiated]
// With no arguments it routes a built-in demo circuit.

#include <cstdio>
#include <cstring>
#include <string>

#include "experiments/tables23.hpp"
#include "io/text_io.hpp"
#include "netlist/synth.hpp"
#include "router/router.hpp"

int main(int argc, char** argv) {
  using namespace fpr;

  Circuit circuit;
  if (argc >= 2) {
    const auto loaded = load_circuit(argv[1]);
    if (!loaded) {
      std::fprintf(stderr, "error: cannot read circuit file '%s'\n", argv[1]);
      return 1;
    }
    circuit = *loaded;
  } else {
    std::printf("(no circuit file given; routing the built-in term1 demo)\n");
    circuit = synthesize_circuit(xc4000_profiles()[2], 1995);
  }

  const int width = argc >= 3 ? std::atoi(argv[2]) : 8;
  const bool xc3000 = argc >= 4 && std::strcmp(argv[3], "xc3000") == 0;
  const ArchSpec arch = xc3000 ? ArchSpec::xc3000(circuit.rows, circuit.cols, width)
                               : ArchSpec::xc4000(circuit.rows, circuit.cols, width);

  RouterOptions options;
  if (argc >= 5) {
    const std::string algo = argv[4];
    if (algo == "pfa") options.algorithm = Algorithm::kPfa;
    else if (algo == "idom") options.algorithm = Algorithm::kIdom;
    else if (algo != "ikmb") {
      std::fprintf(stderr, "error: unknown algorithm '%s'\n", algo.c_str());
      return 1;
    }
  }

  if (argc >= 6) {
    const std::string mode = argv[5];
    if (mode == "negotiated") options.mode = RouterMode::kNegotiated;
    else if (mode != "paper") {
      std::fprintf(stderr, "error: unknown router mode '%s'\n", mode.c_str());
      return 1;
    }
  }

  std::printf("Routing '%s' (%zu nets) on %s with %s (%s mode)...\n", circuit.name.c_str(),
              circuit.nets.size(), arch.describe().c_str(),
              algorithm_name(options.algorithm).data(),
              router_mode_name(options.mode).data());
  Device device(arch);
  const RoutingResult result = route_circuit(device, circuit, options);
  if (!result.success) {
    std::printf("UNROUTABLE at W=%d: %d nets failed after %d passes\n", width,
                result.failed_nets, result.passes);
    return 2;
  }
  std::printf("SUCCESS in %d pass(es)\n", result.passes);
  if (options.mode == RouterMode::kNegotiated && result.pattern_attempts > 0) {
    std::printf("  pattern fast path:      %lld of %lld two-pin probes accepted\n",
                result.pattern_accepts, result.pattern_attempts);
  }
  std::printf("  wire segments used:     %d of %d\n", result.total_wire_nodes,
              device.wire_count());
  std::printf("  physical wirelength:    %ld hops\n", result.total_physical_wirelength);
  std::printf("  sum of max pathlengths: %ld hops\n", result.total_physical_max_path);
  std::printf("  routed metric: wire %.0f, max paths %.0f (optimal %.0f)\n",
              result.total_wirelength, result.total_max_pathlength,
              result.total_optimal_max_pathlength);
  return 0;
}
