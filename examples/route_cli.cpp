// Minimal command-line router: load a circuit file (see src/io/text_io.hpp
// for the format; export_benchmarks writes compatible files), route it on a
// Xilinx-style device at the given channel width, and report the outcome.
//
// Usage: route_cli [--repair <events-file>] <circuit.net> [width]
//                  [xc3000|xc4000] [ikmb|pfa|idom] [paper|negotiated]
// With no positional arguments it routes a built-in demo circuit.
//
// --repair streams an ECO scenario: after the initial route, each line of
// <events-file> (RepairEvent::describe format, e.g. "repair wires=12,40";
// blank lines and # comments skipped) is applied through the incremental
// repair engine, and the per-event RepairOutcome line is printed — the same
// text a repair journal records.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "experiments/tables23.hpp"
#include "io/text_io.hpp"
#include "netlist/synth.hpp"
#include "router/repair.hpp"
#include "router/router.hpp"

int main(int argc, char** argv) {
  using namespace fpr;

  std::string events_path;
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--repair") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --repair needs an events file\n");
        return 1;
      }
      events_path = argv[++i];
    } else {
      args.emplace_back(argv[i]);
    }
  }

  Circuit circuit;
  if (!args.empty()) {
    const auto loaded = load_circuit(args[0]);
    if (!loaded) {
      std::fprintf(stderr, "error: cannot read circuit file '%s'\n", args[0].c_str());
      return 1;
    }
    circuit = *loaded;
  } else {
    std::printf("(no circuit file given; routing the built-in term1 demo)\n");
    circuit = synthesize_circuit(xc4000_profiles()[2], 1995);
  }

  const int width = args.size() >= 2 ? std::atoi(args[1].c_str()) : 8;
  const bool xc3000 = args.size() >= 3 && args[2] == "xc3000";
  const ArchSpec arch = xc3000 ? ArchSpec::xc3000(circuit.rows, circuit.cols, width)
                               : ArchSpec::xc4000(circuit.rows, circuit.cols, width);

  RouterOptions options;
  if (args.size() >= 4) {
    const std::string& algo = args[3];
    if (algo == "pfa") options.algorithm = Algorithm::kPfa;
    else if (algo == "idom") options.algorithm = Algorithm::kIdom;
    else if (algo != "ikmb") {
      std::fprintf(stderr, "error: unknown algorithm '%s'\n", algo.c_str());
      return 1;
    }
  }

  if (args.size() >= 5) {
    const std::string& mode = args[4];
    if (mode == "negotiated") options.mode = RouterMode::kNegotiated;
    else if (mode != "paper") {
      std::fprintf(stderr, "error: unknown router mode '%s'\n", mode.c_str());
      return 1;
    }
  }
  // Repair rips up by exact commit-log subtraction, so the seed route must
  // record per-net logs.
  options.record_commits = !events_path.empty();

  std::printf("Routing '%s' (%zu nets) on %s with %s (%s mode)...\n", circuit.name.c_str(),
              circuit.nets.size(), arch.describe().c_str(),
              algorithm_name(options.algorithm).data(),
              router_mode_name(options.mode).data());
  Device device(arch);
  RoutingResult result = route_circuit(device, circuit, options);
  if (!result.success) {
    std::printf("UNROUTABLE at W=%d: %d nets failed after %d passes\n", width,
                result.failed_nets, result.passes);
    return 2;
  }
  std::printf("SUCCESS in %d pass(es)\n", result.passes);
  if (options.mode == RouterMode::kNegotiated && result.pattern_attempts > 0) {
    std::printf("  pattern fast path:      %lld of %lld two-pin probes accepted\n",
                result.pattern_accepts, result.pattern_attempts);
  }
  std::printf("  wire segments used:     %d of %d\n", result.total_wire_nodes,
              device.wire_count());
  std::printf("  physical wirelength:    %ld hops\n", result.total_physical_wirelength);
  std::printf("  sum of max pathlengths: %ld hops\n", result.total_physical_max_path);
  std::printf("  routed metric: wire %.0f, max paths %.0f (optimal %.0f)\n",
              result.total_wirelength, result.total_max_pathlength,
              result.total_optimal_max_pathlength);

  if (events_path.empty()) return 0;

  std::ifstream in(events_path);
  if (!in) {
    std::fprintf(stderr, "error: cannot read events file '%s'\n", events_path.c_str());
    return 1;
  }
  std::printf("\nApplying ECO events from %s:\n", events_path.c_str());
  std::string line;
  int line_no = 0;
  int applied = 0;
  bool all_clean = true;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    const auto first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] == '#') continue;
    const auto event = RepairEvent::parse(line);
    if (!event) {
      std::fprintf(stderr, "error: %s:%d: not a repair event: %s\n", events_path.c_str(),
                   line_no, line.c_str());
      return 1;
    }
    const RepairOutcome outcome = repair_route(device, circuit, result, *event, options);
    ++applied;
    all_clean = all_clean && outcome.clean();
    std::printf("  %s\n    %s\n", event->describe().c_str(), outcome.describe().c_str());
  }
  std::printf("%d event(s) applied; %s after repair (%d of %zu nets routed)\n", applied,
              result.success ? "ROUTED" : "DEGRADED", static_cast<int>(result.nets.size()) -
              result.failed_nets, result.nets.size());
  return all_clean && result.success ? 0 : 3;
}
