// Gallery of the paper's worst-case constructions (Figures 10, 11, 14):
// builds each adversarial family at a small size, routes it with the
// heuristic it targets plus the exact solver, and prints the gap — a
// hands-on tour of why the performance bounds are what they are.

#include <cstdio>

#include "arbor/exact_gsa.hpp"
#include "core/route.hpp"
#include "workload/worstcase.hpp"

int main() {
  using namespace fpr;

  {
    const auto inst = pfa_weighted_worst_case(/*sink_pairs=*/4);
    PathOracle oracle(inst.graph);
    const auto pfa_tree = route(inst.graph, inst.net, Algorithm::kPfa, oracle);
    const auto idom_tree = route(inst.graph, inst.net, Algorithm::kIdom, oracle);
    std::printf("Fig. 10 gadget (8 sinks): decoy meeting points lure PFA away from the hub\n");
    std::printf("  optimal (hub star):   %.3f\n", inst.optimal_cost);
    std::printf("  PFA (falls for it):   %.3f  (%.1fx optimal)\n", pfa_tree.cost(),
                pfa_tree.cost() / inst.optimal_cost);
    std::printf("  IDOM (adopts hub):    %.3f  (optimal — Section 4.2's motivation)\n\n",
                idom_tree.cost());
  }

  {
    const auto inst = pfa_staircase(/*steps=*/9);
    PathOracle oracle(inst.grid.graph());
    const auto pfa_tree = route(inst.grid.graph(), inst.net, Algorithm::kPfa, oracle);
    const auto opt = exact_gsa(inst.grid.graph(), inst.net.terminals(), oracle);
    std::printf("Fig. 11 staircase (10 sinks, unit/two-unit spacing):\n");
    std::printf("  optimal arborescence: %.0f\n", opt ? opt->cost() : -1.0);
    std::printf("  PFA:                  %.0f  (bound: 2x; our SPT-extraction keeps it near 1x)\n\n",
                pfa_tree.cost());
  }

  {
    const auto inst = idom_set_cover_worst_case(/*levels=*/4);
    PathOracle oracle(inst.graph);
    const auto idom_tree = route(inst.graph, inst.net, Algorithm::kIdom, oracle);
    std::printf("Fig. 14 Set-Cover gadget (32 sinks): greedy savings ties favor trap boxes\n");
    std::printf("  optimal (two rows):   %.3f\n", inst.optimal_cost);
    std::printf("  IDOM (picks traps):   %.3f  (%.1fx optimal, growing like log N)\n",
                idom_tree.cost(), idom_tree.cost() / inst.optimal_cost);
    std::printf("  (matches the conjectured O(log N) ratio of Section 4.2)\n");
  }
  return 0;
}
