// End-to-end FPGA routing: build a Xilinx-4000-style device, synthesize a
// placed circuit from a published benchmark profile, route it completely
// with the multi-pass router, and search for the minimum channel width —
// the Tables 2/3 flow in miniature.

#include <cstdio>

#include "experiments/tables23.hpp"
#include "netlist/synth.hpp"
#include "router/baseline.hpp"
#include "router/width_search.hpp"

int main() {
  using namespace fpr;

  // term1: 10x9 logic-block array, 88 nets (Table 3 row 3).
  const CircuitProfile& profile = xc4000_profiles()[2];
  const Circuit circuit = synthesize_circuit(profile, /*seed=*/1995);
  const auto h = circuit.histogram();
  std::printf("Circuit '%s': %zu nets on a %dx%d array (%d 2-3 pin, %d 4-10 pin, %d >10 pin)\n",
              circuit.name.c_str(), circuit.nets.size(), circuit.rows, circuit.cols, h.pins_2_3,
              h.pins_4_10, h.pins_over_10);

  // Route once at a known-feasible width and inspect the outcome.
  const ArchSpec arch = arch_for(profile, ArchFamily::kXc4000).with_width(8);
  std::printf("\nDevice: %s (%d graph nodes, %d wire segments)\n", arch.describe().c_str(),
              Device(arch).graph().node_count(), Device(arch).wire_count());

  Device device(arch);
  RouterOptions options;  // IKMB, move-to-front, congestion weighting
  const RoutingResult result = route_circuit(device, circuit, options);
  std::printf("Complete routing: %s in %d pass(es); total wirelength %.0f; %d wire segments used\n",
              result.success ? "SUCCESS" : "FAILED", result.passes, result.total_wirelength,
              result.total_wire_nodes);

  // Minimum-channel-width search, our router vs the two-pin baseline.
  WidthSearchOptions search;
  search.max_width = 16;
  const auto ours = find_min_channel_width(arch, circuit, options, search);
  const auto baseline =
      find_min_channel_width(arch, circuit, two_pin_baseline_options(), search);
  std::printf("\nMinimum channel width: our Steiner router W=%d, two-pin baseline W=%d\n",
              ours.min_width, baseline.min_width);
  std::printf("(paper, real term1 netlist: our router 8, SEGA 10, GBP 10)\n");
  return 0;
}
