// Quickstart: route one multi-pin net on a weighted grid with every
// algorithm in the library and compare wirelength / max source-sink
// pathlength.
//
// Build & run:   cmake -B build -G Ninja && cmake --build build
//                ./build/examples/quickstart

#include <cstdio>

#include "core/metrics.hpp"
#include "core/route.hpp"
#include "graph/grid.hpp"

int main() {
  using namespace fpr;

  // A 12x12 routing grid with unit edge weights. Nets name a source and a
  // set of sinks; any grid node can serve as a Steiner point.
  GridGraph grid(12, 12);

  Net net;
  net.source = grid.node_at(1, 1);
  net.sinks = {grid.node_at(10, 2), grid.node_at(2, 10), grid.node_at(8, 8),
               grid.node_at(5, 3)};

  // Congest a horizontal corridor: routing must adapt to the weighted
  // metric, not plain geometry (the paper's Fig. 3 point).
  for (int x = 3; x < 9; ++x) {
    grid.graph().set_edge_weight(grid.horizontal_edge(x, 5), 3.0);
  }

  std::printf("%-10s %12s %16s %10s\n", "algorithm", "wirelength", "max pathlength",
              "shortest?");
  PathOracle oracle(grid.graph());
  for (const Algorithm algo : table1_algorithms()) {
    const RoutingTree tree = route(grid.graph(), net, algo, oracle);
    const TreeMetrics m = measure(grid.graph(), net, tree, oracle);
    std::printf("%-10s %12.1f %16.1f %10s\n", algorithm_name(algo).data(), m.wirelength,
                m.max_pathlength, m.shortest_paths ? "yes" : "no");
  }

  std::printf(
      "\nSteiner heuristics (KMB/ZEL/IKMB/IZEL) minimize wirelength only;\n"
      "arborescences (DJKA/DOM/PFA/IDOM) deliver shortest paths to every\n"
      "sink, trading a little wirelength for optimal delay.\n");
  return 0;
}
