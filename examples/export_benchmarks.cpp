// Exports the full synthetic benchmark suite — one placed circuit per
// Table 2/3 profile — to plain-text .net files, the way the paper's authors
// made their benchmarks "available upon request". Re-loading a file and
// routing it reproduces the width experiments exactly (generation is
// seed-deterministic).

#include <cstdio>
#include <filesystem>

#include "io/text_io.hpp"
#include "netlist/synth.hpp"

int main() {
  using namespace fpr;
  const std::filesystem::path dir = "fpr_benchmarks";
  std::filesystem::create_directories(dir);

  int written = 0;
  const auto dump = [&](const CircuitProfile& profile, const char* family) {
    const Circuit circuit = synthesize_circuit(profile, /*seed=*/1995);
    const auto path = dir / (profile.name + "." + family + ".net");
    if (save_circuit(path.string(), circuit)) {
      const auto h = circuit.histogram();
      std::printf("  %-28s %4zu nets (%d/%d/%d) on %dx%d\n", path.string().c_str(),
                  circuit.nets.size(), h.pins_2_3, h.pins_4_10, h.pins_over_10, circuit.rows,
                  circuit.cols);
      ++written;
    }
  };

  std::printf("Exporting Table 2 (3000-series) circuits:\n");
  for (const auto& profile : xc3000_profiles()) dump(profile, "xc3000");
  std::printf("Exporting Table 3 (4000-series) circuits:\n");
  for (const auto& profile : xc4000_profiles()) dump(profile, "xc4000");

  std::printf("\n%d circuits written to %s/ — load with fpr::load_circuit().\n", written,
              dir.string().c_str());
  return 0;
}
